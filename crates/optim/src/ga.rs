//! A deterministic, parallel, memoized genetic algorithm over bounded
//! integer chromosomes.
//!
//! The engine is generic: the CoHoRT timer problem is one instance, the
//! ablation benches reuse it with other fitness functions. Determinism is a
//! hard requirement (the paper's Table II must regenerate identically), so
//! all randomness flows from a caller-provided seed through ChaCha, and the
//! engine is structured so that **parallel evaluation is bit-identical to
//! serial evaluation**: each generation's offspring are bred sequentially
//! with the RNG first, then the batch is scored across scoped worker
//! threads — the RNG never observes evaluation order.
//!
//! Three further properties matter for long LUT optimizations:
//!
//! - **Memoization** — fitness is cached per genome, so elites,
//!   no-crossover clones and seeded re-runs never re-evaluate an identical
//!   chromosome (the timer problem's cache-analysis fitness is expensive).
//! - **Early stopping** — optional stall / target / evaluation-budget
//!   cut-offs ([`GaConfig::stall_generations`] and friends).
//! - **Checkpointing** — the RNG is re-derived per generation from
//!   `(seed, generation)`, so a [`GaCheckpoint`] (population + memo +
//!   counters) restored via [`GeneticAlgorithm::resume`] continues
//!   bit-identically to the uninterrupted run.

use std::collections::HashMap; // lint:allow(det-unordered) the fitness memo and pending-index are lookup-only; the only iteration (checkpointing) sorts by genes first
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use cohort_types::{Error, Result};

use crate::checkpoint::GaCheckpoint;
use crate::observer::{GaObserver, GenerationReport};

/// Inclusive per-gene bounds of the search space.
///
/// # Examples
///
/// ```
/// use cohort_optim::SearchSpace;
///
/// let space = SearchSpace::new(vec![(1, 10), (5, 5)]);
/// assert_eq!(space.genes(), 2);
/// assert!(space.contains(&[3, 5]));
/// assert!(!space.contains(&[0, 5]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    bounds: Vec<(u64, u64)>,
    log_scale: bool,
}

impl SearchSpace {
    /// Creates a search space from inclusive `(low, high)` bounds with
    /// uniform (linear) sampling.
    ///
    /// # Panics
    ///
    /// Panics if any bound has `low > high` or the space is empty.
    #[must_use]
    pub fn new(bounds: Vec<(u64, u64)>) -> Self {
        Self::with_scale(bounds, false)
    }

    /// Creates a search space sampled **log-uniformly**: appropriate when
    /// genes span orders of magnitude and the interesting region sits near
    /// the low end — exactly the shape of the timer problem, where θ_sat
    /// can be tens of thousands but feasible timers are tens of cycles.
    /// Requires strictly positive lower bounds.
    ///
    /// # Panics
    ///
    /// Panics if any bound has `low > high` or `low == 0`, or the space is
    /// empty.
    #[must_use]
    pub fn logarithmic(bounds: Vec<(u64, u64)>) -> Self {
        assert!(bounds.iter().all(|&(lo, _)| lo > 0), "log scale needs positive lower bounds");
        Self::with_scale(bounds, true)
    }

    fn with_scale(bounds: Vec<(u64, u64)>, log_scale: bool) -> Self {
        assert!(!bounds.is_empty(), "search space needs at least one gene");
        for &(lo, hi) in &bounds {
            assert!(lo <= hi, "inverted bound {lo}..={hi}");
        }
        SearchSpace { bounds, log_scale }
    }

    /// Number of genes per chromosome.
    #[must_use]
    pub fn genes(&self) -> usize {
        self.bounds.len()
    }

    /// The inclusive bounds of one gene.
    #[must_use]
    pub fn bound(&self, gene: usize) -> (u64, u64) {
        self.bounds[gene]
    }

    /// Whether a chromosome lies inside the space.
    #[must_use]
    pub fn contains(&self, genes: &[u64]) -> bool {
        genes.len() == self.bounds.len()
            && genes.iter().zip(&self.bounds).all(|(&g, &(lo, hi))| g >= lo && g <= hi)
    }

    /// Samples one gene (uniformly, or log-uniformly for log-scale spaces).
    fn sample_gene(&self, gene: usize, rng: &mut ChaCha8Rng) -> u64 {
        let (lo, hi) = self.bounds[gene];
        if self.log_scale && hi > lo {
            let (ll, lh) = ((lo as f64).ln(), (hi as f64).ln());
            let v = rng.gen_range(ll..=lh).exp().round() as u64;
            v.clamp(lo, hi)
        } else {
            rng.gen_range(lo..=hi)
        }
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<u64> {
        (0..self.bounds.len()).map(|i| self.sample_gene(i, rng)).collect()
    }

    fn clamp(&self, gene: usize, value: u64) -> u64 {
        let (lo, hi) = self.bounds[gene];
        value.clamp(lo, hi)
    }
}

/// Hyper-parameters of the GA. The defaults mirror a stock "default
/// parameters" GA as used by the paper's Matlab setup: generational
/// replacement with elitism, tournament selection, uniform crossover,
/// reset-or-jitter mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of crossing two parents (vs cloning one).
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed (the whole run is a pure function of it).
    pub seed: u64,
    /// Worker threads for fitness evaluation; `0` (the default) resolves
    /// to [`std::thread::available_parallelism`]. Any value produces
    /// bit-identical outcomes — parallelism never touches the RNG.
    pub workers: usize,
    /// Stop early after this many consecutive generations without a strict
    /// improvement of the best fitness. `None` disables the cut-off.
    pub stall_generations: Option<usize>,
    /// Stop early once the best fitness is `≤` this target. `None`
    /// disables the cut-off.
    pub target_fitness: Option<f64>,
    /// Stop early once this many *actual* fitness evaluations (memo hits
    /// excluded) have been spent. Checked at generation granularity, so
    /// the final generation may overshoot. `None` disables the budget.
    pub max_evaluations: Option<u64>,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 48,
            generations: 60,
            tournament: 3,
            crossover_rate: 0.9,
            mutation_rate: 0.15,
            elitism: 2,
            seed: 0,
            workers: 0,
            stall_generations: None,
            target_fitness: None,
            max_evaluations: None,
        }
    }
}

impl GaConfig {
    /// The evaluation worker count this configuration resolves to.
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.workers
        }
    }
}

/// One scored chromosome of a population.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// The chromosome.
    pub genes: Vec<u64>,
    /// Its fitness (lower is better; never NaN — see
    /// [`GaOutcome::nan_evaluations`]).
    pub fitness: f64,
}

/// Why a run returned when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// All configured generations ran.
    Completed,
    /// The best fitness reached [`GaConfig::target_fitness`].
    TargetReached,
    /// [`GaConfig::stall_generations`] generations passed without
    /// improvement.
    Stalled,
    /// The [`GaConfig::max_evaluations`] budget was exhausted.
    BudgetExhausted,
}

/// Result of a GA run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaOutcome {
    /// The best chromosome found.
    pub best: Vec<u64>,
    /// Its fitness (lower is better).
    pub best_fitness: f64,
    /// Best fitness after each generation (convergence curve; shorter than
    /// [`GaConfig::generations`] when the run stopped early).
    pub history: Vec<f64>,
    /// Fitness evaluations actually performed (memo hits excluded).
    pub evaluations: u64,
    /// Evaluations answered from the genome-keyed memo cache instead.
    pub cache_hits: u64,
    /// Evaluations that returned NaN and were coerced to `+∞` (a correct
    /// fitness function never produces any).
    pub nan_evaluations: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

impl GaOutcome {
    /// Fraction of fitness lookups served by the memo cache, in `[0, 1]`.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.evaluations + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The do-nothing observer behind [`GeneticAlgorithm::run`].
struct SilentObserver;

impl GaObserver for SilentObserver {}

/// Derives the RNG for one stream of a run: stream 0 samples the initial
/// population, stream `g + 1` breeds generation `g`. A splitmix64
/// finalizer decorrelates adjacent streams (even under the offline stub
/// RNG, whose seeding is a plain counter).
fn stream_rng(seed: u64, stream: u64) -> ChaCha8Rng {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
}

/// Mutable bookkeeping of one run: the memo cache and the counters that
/// end up in [`GaOutcome`] / [`GaCheckpoint`].
struct RunState {
    memo: HashMap<Vec<u64>, f64>,
    evaluations: u64,
    cache_hits: u64,
    nan_evaluations: u64,
    history: Vec<f64>,
}

/// A deterministic, minimising genetic algorithm.
///
/// # Examples
///
/// Minimise the distance to a hidden target vector:
///
/// ```
/// use cohort_optim::{GaConfig, GeneticAlgorithm, SearchSpace};
///
/// let space = SearchSpace::new(vec![(0, 100); 4]);
/// let target = [7u64, 42, 99, 0];
/// let ga = GeneticAlgorithm::new(space, GaConfig::default());
/// let outcome = ga.run(|genes| {
///     genes.iter().zip(&target).map(|(&g, &t)| (g as f64 - t as f64).abs()).sum()
/// });
/// assert!(outcome.best_fitness <= 10.0, "close to the target");
/// assert_eq!(outcome.history.len(), GaConfig::default().generations);
/// ```
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    space: SearchSpace,
    config: GaConfig,
}

impl GeneticAlgorithm {
    /// Creates an engine over `space` with the given hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if the population or tournament size is zero, or elitism
    /// exceeds the population.
    #[must_use]
    pub fn new(space: SearchSpace, config: GaConfig) -> Self {
        assert!(config.population > 0, "population must be positive");
        assert!(config.tournament > 0, "tournament must be positive");
        assert!(config.elitism <= config.population, "elitism exceeds population");
        GeneticAlgorithm { space, config }
    }

    /// The search space the engine explores.
    #[must_use]
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The hyper-parameters the engine runs with.
    #[must_use]
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Runs the GA, minimising `fitness`. Optionally seeds the initial
    /// population with known-good chromosomes via [`Self::run_seeded`].
    pub fn run(&self, fitness: impl Fn(&[u64]) -> f64 + Sync) -> GaOutcome {
        self.run_observed(&[], &SilentObserver, fitness).expect("an unseeded run cannot fail")
    }

    /// Runs the GA with `seeds` injected into the initial population (the
    /// mode-switch flow seeds each mode with the previous mode's solution).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if a seed chromosome lies outside
    /// the search space, or if more seeds are supplied than the population
    /// can hold — silently dropping a seed would lose e.g. the previous
    /// mode's solution unnoticed, so overflow is an explicit error.
    pub fn run_seeded(
        &self,
        seeds: &[Vec<u64>],
        fitness: impl Fn(&[u64]) -> f64 + Sync,
    ) -> Result<GaOutcome> {
        self.run_observed(seeds, &SilentObserver, fitness)
    }

    /// Like [`Self::run_seeded`], reporting per-generation progress (and
    /// checkpoint opportunities) to `observer`.
    ///
    /// # Errors
    ///
    /// As [`Self::run_seeded`].
    pub fn run_observed(
        &self,
        seeds: &[Vec<u64>],
        observer: &dyn GaObserver,
        fitness: impl Fn(&[u64]) -> f64 + Sync,
    ) -> Result<GaOutcome> {
        for seed in seeds {
            if !self.space.contains(seed) {
                return Err(Error::InvalidConfig(format!(
                    "seed chromosome {seed:?} out of bounds for the search space"
                )));
            }
        }
        if seeds.len() > self.config.population {
            return Err(Error::InvalidConfig(format!(
                "{} seed chromosomes exceed the population of {} — raise the population or drop \
                 seeds explicitly",
                seeds.len(),
                self.config.population
            )));
        }

        let mut state = RunState {
            memo: HashMap::new(),
            evaluations: 0,
            cache_hits: 0,
            nan_evaluations: 0,
            history: Vec::with_capacity(self.config.generations),
        };

        // Initial population: injected seeds then random samples, bred
        // sequentially from stream 0 and scored as one batch.
        let mut rng = stream_rng(self.config.seed, 0);
        let mut genomes: Vec<Vec<u64>> = seeds.to_vec();
        while genomes.len() < self.config.population {
            genomes.push(self.space.sample(&mut rng));
        }
        let mut population = self.score_batch(genomes, &mut state, &fitness);
        population.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));

        Ok(self.evolve(population, 0, &mut state, observer, &fitness))
    }

    /// Resumes a checkpointed run: restores the population, memo cache and
    /// counters, then continues breeding from the recorded generation. The
    /// continuation is bit-identical to the uninterrupted run because each
    /// generation's RNG is derived from `(seed, generation)` alone.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the checkpoint does not match
    /// this engine: different seed or population size, chromosomes outside
    /// the search space, or more completed generations than the
    /// configuration allows.
    pub fn resume(
        &self,
        checkpoint: &GaCheckpoint,
        fitness: impl Fn(&[u64]) -> f64 + Sync,
    ) -> Result<GaOutcome> {
        self.resume_observed(checkpoint, &SilentObserver, fitness)
    }

    /// Like [`Self::resume`], reporting progress to `observer`.
    ///
    /// # Errors
    ///
    /// As [`Self::resume`].
    pub fn resume_observed(
        &self,
        checkpoint: &GaCheckpoint,
        observer: &dyn GaObserver,
        fitness: impl Fn(&[u64]) -> f64 + Sync,
    ) -> Result<GaOutcome> {
        if checkpoint.seed != self.config.seed {
            return Err(Error::InvalidConfig(format!(
                "checkpoint was recorded at seed {}, engine runs seed {}",
                checkpoint.seed, self.config.seed
            )));
        }
        if checkpoint.population.is_empty() {
            return Err(Error::InvalidConfig(
                "checkpoint has an empty population — nothing to resume from".into(),
            ));
        }
        if checkpoint.population.len() != self.config.population {
            return Err(Error::InvalidConfig(format!(
                "checkpoint population {} does not match the configured population {}",
                checkpoint.population.len(),
                self.config.population
            )));
        }
        if checkpoint.generations_done > self.config.generations {
            return Err(Error::InvalidConfig(format!(
                "checkpoint already ran {} generations, configuration allows {}",
                checkpoint.generations_done, self.config.generations
            )));
        }
        for individual in checkpoint.population.iter().chain(&checkpoint.memo) {
            if !self.space.contains(&individual.genes) {
                return Err(Error::InvalidConfig(format!(
                    "checkpoint chromosome {:?} out of bounds for the search space",
                    individual.genes
                )));
            }
        }
        let mut state = RunState {
            memo: checkpoint.memo.iter().map(|i| (i.genes.clone(), i.fitness)).collect(),
            evaluations: checkpoint.evaluations,
            cache_hits: checkpoint.cache_hits,
            nan_evaluations: checkpoint.nan_evaluations,
            history: checkpoint.history.clone(),
        };
        let mut population = checkpoint.population.clone();
        population.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
        Ok(self.evolve(population, checkpoint.generations_done, &mut state, observer, fitness))
    }

    /// The generational loop shared by fresh and resumed runs.
    fn evolve(
        &self,
        mut population: Vec<Individual>,
        start_generation: usize,
        state: &mut RunState,
        observer: &dyn GaObserver,
        fitness: impl Fn(&[u64]) -> f64 + Sync,
    ) -> GaOutcome {
        let mut best_so_far = population[0].fitness;
        let mut stalled_for = 0usize;
        let mut stop = StopReason::Completed;

        for generation in start_generation..self.config.generations {
            if self.config.target_fitness.is_some_and(|t| best_so_far <= t) {
                stop = StopReason::TargetReached;
                break;
            }
            if self.config.max_evaluations.is_some_and(|b| state.evaluations >= b) {
                stop = StopReason::BudgetExhausted;
                break;
            }
            if self.config.stall_generations.is_some_and(|s| stalled_for >= s) {
                stop = StopReason::Stalled;
                break;
            }

            // Breed the full offspring batch sequentially with this
            // generation's RNG stream; fitness plays no part in breeding
            // beyond the (already-scored) parents, so evaluation can
            // happen afterwards, in parallel, without touching the RNG.
            let mut rng = stream_rng(self.config.seed, generation as u64 + 1);
            let elites: Vec<Individual> =
                population.iter().take(self.config.elitism).cloned().collect();
            let mut offspring = Vec::with_capacity(self.config.population - elites.len());
            while elites.len() + offspring.len() < self.config.population {
                let a = self.tournament(&population, &mut rng);
                let child = if rng.gen_bool(self.config.crossover_rate) {
                    let b = self.tournament(&population, &mut rng);
                    Self::crossover(&population[a].genes, &population[b].genes, &mut rng)
                } else {
                    population[a].genes.clone()
                };
                offspring.push(self.mutate(child, &mut rng));
            }

            let mut next = elites;
            next.extend(self.score_batch(offspring, state, &fitness));
            population = next;
            population.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));

            // History entry g is the best *after* generation g has bred
            // (monotone thanks to elitism).
            let best = population[0].fitness;
            state.history.push(best);
            if best < best_so_far {
                best_so_far = best;
                stalled_for = 0;
            } else {
                stalled_for += 1;
            }
            observer.generation_finished(&GenerationReport::new(
                generation,
                &population,
                state.evaluations,
                state.cache_hits,
                state.nan_evaluations,
                &state.history,
                &state.memo,
                self.config.seed,
            ));
        }

        GaOutcome {
            best: population[0].genes.clone(),
            best_fitness: population[0].fitness,
            history: std::mem::take(&mut state.history),
            evaluations: state.evaluations,
            cache_hits: state.cache_hits,
            nan_evaluations: state.nan_evaluations,
            stop,
        }
    }

    /// Scores a batch of genomes through the memo cache, evaluating the
    /// unknown ones on the worker pool. Duplicate genomes within the batch
    /// evaluate once; every other resolution counts as a cache hit. The
    /// result order matches the input order, so parallel and serial
    /// execution are bit-identical.
    fn score_batch(
        &self,
        genomes: Vec<Vec<u64>>,
        state: &mut RunState,
        fitness: impl Fn(&[u64]) -> f64 + Sync,
    ) -> Vec<Individual> {
        // Resolve against the memo in batch order; collect unknown unique
        // genomes (first occurrence wins) for evaluation.
        enum Slot {
            Cached(f64),
            Pending(usize),
        }
        let mut pending: Vec<Vec<u64>> = Vec::new();
        let mut pending_index: HashMap<&[u64], usize> = HashMap::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(genomes.len());
        for genes in &genomes {
            if let Some(&f) = state.memo.get(genes) {
                state.cache_hits += 1;
                slots.push(Slot::Cached(f));
            } else if let Some(&i) = pending_index.get(genes.as_slice()) {
                state.cache_hits += 1;
                slots.push(Slot::Pending(i));
            } else {
                let i = pending.len();
                pending_index.insert(genes.as_slice(), i);
                pending.push(genes.clone());
                slots.push(Slot::Pending(i));
            }
        }

        let raw = self.evaluate(&pending, &fitness);
        state.evaluations += pending.len() as u64;

        // Sanitize serially (deterministic warning + counting): NaN would
        // silently survive total_cmp sorting and corrupt the monotone
        // history invariant, so it is rejected at the evaluation boundary.
        let mut scores = Vec::with_capacity(raw.len());
        for (genes, f) in pending.iter().zip(raw) {
            let f = if f.is_nan() {
                if state.nan_evaluations == 0 {
                    eprintln!(
                        "cohort-optim: fitness returned NaN for {genes:?}; treating as +inf \
                         (further NaN warnings suppressed)"
                    );
                }
                state.nan_evaluations += 1;
                f64::INFINITY
            } else {
                f
            };
            debug_assert!(!f.is_nan(), "sanitized fitness must never be NaN");
            state.memo.insert(genes.clone(), f);
            scores.push(f);
        }

        genomes
            .into_iter()
            .zip(slots)
            .map(|(genes, slot)| {
                let fitness = match slot {
                    Slot::Cached(f) => f,
                    Slot::Pending(i) => scores[i],
                };
                Individual { genes, fitness }
            })
            .collect()
    }

    /// Evaluates `genomes` with at most [`GaConfig::resolved_workers`]
    /// scoped threads, returning raw fitness values in input order. Falls
    /// back to a plain loop when one worker suffices (no spawn overhead).
    fn evaluate(
        &self,
        genomes: &[Vec<u64>],
        fitness: &(impl Fn(&[u64]) -> f64 + Sync),
    ) -> Vec<f64> {
        let workers = self.config.resolved_workers().min(genomes.len());
        if workers <= 1 {
            return genomes.iter().map(|g| fitness(g)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<f64>> = vec![None; genomes.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            let Some(genes) = genomes.get(index) else { break };
                            local.push((index, fitness(genes)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (index, value) in handle.join().expect("fitness evaluation panicked") {
                    slots[index] = Some(value);
                }
            }
        });
        slots.into_iter().map(|s| s.expect("every genome evaluated exactly once")).collect()
    }

    fn tournament(&self, population: &[Individual], rng: &mut ChaCha8Rng) -> usize {
        let mut best = rng.gen_range(0..population.len());
        for _ in 1..self.config.tournament {
            let challenger = rng.gen_range(0..population.len());
            if population[challenger].fitness < population[best].fitness {
                best = challenger;
            }
        }
        best
    }

    fn crossover(a: &[u64], b: &[u64], rng: &mut ChaCha8Rng) -> Vec<u64> {
        a.iter().zip(b).map(|(&ga, &gb)| if rng.gen_bool(0.5) { ga } else { gb }).collect()
    }

    fn mutate(&self, mut genes: Vec<u64>, rng: &mut ChaCha8Rng) -> Vec<u64> {
        for (i, gene) in genes.iter_mut().enumerate() {
            if !rng.gen_bool(self.config.mutation_rate) {
                continue;
            }
            let (lo, hi) = self.space.bound(i);
            if rng.gen_bool(0.5) {
                // Reset: explore (log-uniformly for log-scale spaces).
                *gene = self.space.sample_gene(i, rng);
            } else if self.space.log_scale {
                // Multiplicative jitter: ×f with ln f uniform over
                // [ln ½, ln 2], so doubling and halving are equally likely
                // — a uniform factor in [0.5, 2] has expectation 1.25 and
                // drifts θ genes upward.
                let factor = rng.gen_range(LN_HALF..=LN_TWO).exp();
                let jittered = ((*gene as f64) * factor).round() as u64;
                *gene = self.space.clamp(i, jittered.max(1));
            } else {
                // Jitter: exploit (±25% of the range, at least ±1).
                let span = ((hi - lo) / 4).max(1);
                let delta = rng.gen_range(0..=span);
                *gene = if rng.gen_bool(0.5) {
                    self.space.clamp(i, gene.saturating_add(delta))
                } else {
                    self.space.clamp(i, gene.saturating_sub(delta))
                };
            }
        }
        genes
    }
}

/// `ln ½` / `ln 2`: the symmetric log-jitter window of the mutation
/// operator.
const LN_HALF: f64 = -std::f64::consts::LN_2;
const LN_TWO: f64 = std::f64::consts::LN_2;

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(genes: &[u64]) -> f64 {
        genes.iter().map(|&g| (g as f64 - 50.0).powi(2)).sum()
    }

    #[test]
    fn converges_on_a_smooth_objective() {
        let space = SearchSpace::new(vec![(0, 1000); 3]);
        let ga = GeneticAlgorithm::new(space, GaConfig::default());
        let outcome = ga.run(sphere);
        assert!(outcome.best_fitness < 500.0, "best {:?}", outcome.best);
        assert_eq!(outcome.stop, StopReason::Completed);
        // Convergence curve is monotone non-increasing (elitism).
        for w in outcome.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let space = SearchSpace::new(vec![(0, 100); 4]);
        let ga = GeneticAlgorithm::new(space.clone(), GaConfig::default());
        let a = ga.run(sphere);
        let b = GeneticAlgorithm::new(space, GaConfig::default()).run(sphere);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let space = SearchSpace::new(vec![(0, 100_000); 5]);
        let serial =
            GeneticAlgorithm::new(space.clone(), GaConfig { workers: 1, ..Default::default() })
                .run(sphere);
        for workers in [2, 3, 8] {
            let parallel =
                GeneticAlgorithm::new(space.clone(), GaConfig { workers, ..Default::default() })
                    .run(sphere);
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn different_seeds_explore_differently() {
        let space = SearchSpace::new(vec![(0, 100_000); 6]);
        let a = GeneticAlgorithm::new(space.clone(), GaConfig::default()).run(sphere);
        let b =
            GeneticAlgorithm::new(space, GaConfig { seed: 1, ..Default::default() }).run(sphere);
        assert_ne!(a.best, b.best);
    }

    #[test]
    fn seeded_population_preserves_a_feasible_start() {
        // Fitness that is 0 only at the seed: elitism must keep it.
        let space = SearchSpace::new(vec![(0, 1_000_000); 4]);
        let seed = vec![123_456u64, 7, 999_999, 0];
        let target = seed.clone();
        let ga = GeneticAlgorithm::new(space, GaConfig { generations: 5, ..Default::default() });
        let outcome = ga
            .run_seeded(&[seed], move |genes| {
                genes.iter().zip(&target).map(|(&g, &t)| (g as f64 - t as f64).abs()).sum()
            })
            .unwrap();
        assert_eq!(outcome.best_fitness, 0.0);
    }

    #[test]
    fn respects_bounds() {
        let space = SearchSpace::new(vec![(10, 20), (5, 5)]);
        let ga = GeneticAlgorithm::new(space.clone(), GaConfig::default());
        let outcome = ga.run(|g| g[0] as f64);
        assert!(space.contains(&outcome.best));
        assert_eq!(outcome.best[1], 5, "degenerate gene pinned");
        assert_eq!(outcome.best[0], 10, "minimum found");
    }

    #[test]
    fn evaluation_count_covers_every_lookup() {
        let config = GaConfig { population: 10, generations: 3, ..Default::default() };
        let space = SearchSpace::new(vec![(0, 9)]);
        let outcome = GeneticAlgorithm::new(space, config).run(|g| g[0] as f64);
        // 10 initial + 3 generations × 8 children (2 elites kept); the memo
        // answers repeats, so actual evaluations can only be fewer — and on
        // a 10-value space they must be: only 10 distinct genomes exist.
        assert_eq!(outcome.evaluations + outcome.cache_hits, 10 + 3 * 8);
        assert!(outcome.evaluations <= 10);
        assert!(outcome.cache_hits >= 24);
        assert!(outcome.cache_hit_rate() > 0.5);
    }

    #[test]
    fn memoization_skips_repeated_chromosomes() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = AtomicU64::new(0);
        let space = SearchSpace::new(vec![(0, 3); 2]);
        let config = GaConfig { population: 12, generations: 8, ..Default::default() };
        let outcome = GeneticAlgorithm::new(space, config).run(|g| {
            calls.fetch_add(1, Ordering::Relaxed);
            g.iter().sum::<u64>() as f64
        });
        // 16 distinct chromosomes exist; the closure cannot have run more
        // often than that, and the reported count matches reality.
        assert_eq!(calls.load(Ordering::Relaxed), outcome.evaluations);
        assert!(outcome.evaluations <= 16, "evaluations {}", outcome.evaluations);
        assert!(outcome.cache_hits > 0);
    }

    #[test]
    fn nan_fitness_is_rejected_at_the_boundary() {
        // A fitness that NaNs on part of the space must not corrupt the
        // outcome: NaN candidates score +inf and finite ones win.
        let space = SearchSpace::new(vec![(0, 99)]);
        let outcome = GeneticAlgorithm::new(space, GaConfig::default()).run(|g| {
            if g[0] % 2 == 0 {
                f64::NAN
            } else {
                g[0] as f64
            }
        });
        assert!(outcome.nan_evaluations > 0, "the space is half NaN");
        assert!(outcome.best_fitness.is_finite());
        assert_eq!(outcome.best[0] % 2, 1, "a NaN candidate must never win");
        for w in outcome.history.windows(2) {
            assert!(w[1] <= w[0], "history stays monotone despite NaNs");
        }
    }

    #[test]
    fn all_nan_fitness_still_terminates_cleanly() {
        let space = SearchSpace::new(vec![(0, 9)]);
        let config = GaConfig { population: 6, generations: 3, ..Default::default() };
        let outcome = GeneticAlgorithm::new(space, config).run(|_| f64::NAN);
        assert_eq!(outcome.best_fitness, f64::INFINITY);
        assert_eq!(outcome.nan_evaluations, outcome.evaluations);
    }

    #[test]
    fn target_fitness_stops_early() {
        let space = SearchSpace::new(vec![(0, 1000); 3]);
        let config = GaConfig { target_fitness: Some(5_000.0), ..Default::default() };
        let outcome = GeneticAlgorithm::new(space, config).run(sphere);
        assert_eq!(outcome.stop, StopReason::TargetReached);
        assert!(outcome.best_fitness <= 5_000.0);
        assert!(outcome.history.len() < GaConfig::default().generations);
    }

    #[test]
    fn stall_cutoff_stops_early_on_a_flat_objective() {
        let space = SearchSpace::new(vec![(0, 1000); 2]);
        let config = GaConfig { stall_generations: Some(4), ..Default::default() };
        let outcome = GeneticAlgorithm::new(space, config).run(|_| 1.0);
        assert_eq!(outcome.stop, StopReason::Stalled);
        // One improvement-free generation per stall tick, checked before
        // breeding the next: 4 stalled generations then the cut.
        assert!(outcome.history.len() <= 5, "history {:?}", outcome.history);
    }

    #[test]
    fn evaluation_budget_is_honoured_at_generation_granularity() {
        let space = SearchSpace::new(vec![(0, 100_000); 4]);
        let config = GaConfig {
            population: 10,
            generations: 50,
            max_evaluations: Some(25),
            ..Default::default()
        };
        let outcome = GeneticAlgorithm::new(space, config).run(sphere);
        assert_eq!(outcome.stop, StopReason::BudgetExhausted);
        // Budget is checked before each generation; one generation of ≤ 8
        // children may overshoot it.
        assert!(outcome.evaluations >= 25);
        assert!(outcome.evaluations < 25 + 8);
        assert!(outcome.history.len() < 50);
    }

    #[test]
    fn rejects_out_of_space_seeds() {
        let space = SearchSpace::new(vec![(0, 5)]);
        let ga = GeneticAlgorithm::new(space, GaConfig::default());
        let err = ga.run_seeded(&[vec![6]], |_| 0.0).unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
    }

    #[test]
    fn rejects_seed_overflow_instead_of_dropping() {
        // Population 2 cannot hold 3 seeds; dropping one silently would
        // lose a previous mode's solution — it must be an error.
        let space = SearchSpace::new(vec![(0, 5)]);
        let config = GaConfig { population: 2, elitism: 1, ..Default::default() };
        let ga = GeneticAlgorithm::new(space, config);
        let seeds = vec![vec![1], vec![2], vec![3]];
        let err = ga.run_seeded(&seeds, |g| g[0] as f64).unwrap_err();
        assert!(err.to_string().contains("exceed the population"), "{err}");
        // Exactly at capacity is fine, and elitism keeps the run at least
        // as good as the best seed.
        let ok = ga.run_seeded(&seeds[..2], |g| g[0] as f64).unwrap();
        assert!(ok.best_fitness <= 1.0);
    }

    #[test]
    fn log_jitter_does_not_drift_on_a_flat_objective() {
        // Regression for the multiplicative-jitter bug: a factor sampled
        // uniformly from [0.5, 2] has expectation 1.25, so on a flat
        // objective (no selection pressure) the population's θ genes
        // drifted upward generation over generation. With the log-uniform
        // factor the drift in log-space is zero-mean; over a long flat run
        // the population's geometric mean must stay near the space's
        // log-centre instead of climbing toward the upper bound.
        use crate::observer::GaObserver;
        use std::sync::Mutex;

        struct LastPopulation(Mutex<Vec<f64>>);
        impl GaObserver for LastPopulation {
            fn generation_finished(&self, report: &crate::GenerationReport<'_>) {
                *self.0.lock().unwrap() = report
                    .population
                    .iter()
                    .map(|i| i.genes.iter().map(|&g| (g as f64).ln()).sum::<f64>())
                    .collect();
            }
        }

        // Space 1..=10_000: log-centre is exp(ln(10_000)/2) = 100.
        let space = SearchSpace::logarithmic(vec![(1, 10_000); 4]);
        let config = GaConfig {
            population: 40,
            generations: 120,
            // Jitter-only mutation pressure: crossover and reset still run,
            // but a flat objective gives selection nothing to act on.
            ..Default::default()
        };
        let observer = LastPopulation(Mutex::new(Vec::new()));
        let _ = GeneticAlgorithm::new(space, config).run_observed(&[], &observer, |_| 1.0).unwrap();
        let last = observer.0.into_inner().unwrap();
        let mean_ln_gene =
            last.iter().sum::<f64>() / (last.len() as f64 * 4.0/* genes per individual */);
        let centre = (10_000f64).ln() / 2.0;
        // The buggy uniform factor drifts ≈ ln(1.125) ≈ 0.118 per mutation
        // event and compounds over 120 generations, blowing far past this
        // window; the log-uniform factor keeps the population centred.
        assert!(
            (mean_ln_gene - centre).abs() < 0.35 * centre,
            "population drifted: mean ln(gene) {mean_ln_gene:.2} vs centre {centre:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "inverted bound")]
    fn rejects_inverted_bounds() {
        let _ = SearchSpace::new(vec![(5, 1)]);
    }
}
