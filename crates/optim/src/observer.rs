//! Progress observation for GA runs, mirroring the sweep engine's
//! `SweepObserver` and the simulator's `SimProbe` patterns: a `Sync` trait
//! of defaulted no-op hooks, so observation is strictly opt-in and costs
//! nothing when unused.

use std::collections::HashMap; // lint:allow(det-unordered) observer hooks borrow the GA's memo read-only; no hook iterates it

use crate::checkpoint::GaCheckpoint;
use crate::ga::Individual;

/// Everything the engine knows right after a generation finished breeding
/// and scoring. Borrowed from the engine's internals — cheap to construct;
/// persisting anything requires a copy (or [`GenerationReport::checkpoint`]
/// for a complete resumable snapshot).
#[derive(Debug)]
pub struct GenerationReport<'a> {
    /// The 0-based index of the generation that just completed.
    pub generation: usize,
    /// The scored population after this generation, best first.
    pub population: &'a [Individual],
    /// Cumulative fitness evaluations actually performed so far.
    pub evaluations: u64,
    /// Cumulative memo-cache hits so far.
    pub cache_hits: u64,
    /// Cumulative NaN evaluations coerced to `+∞` so far.
    pub nan_evaluations: u64,
    history: &'a [f64],
    memo: &'a HashMap<Vec<u64>, f64>,
    seed: u64,
}

impl<'a> GenerationReport<'a> {
    #[allow(clippy::too_many_arguments)] // crate-internal constructor
    pub(crate) fn new(
        generation: usize,
        population: &'a [Individual],
        evaluations: u64,
        cache_hits: u64,
        nan_evaluations: u64,
        history: &'a [f64],
        memo: &'a HashMap<Vec<u64>, f64>,
        seed: u64,
    ) -> Self {
        GenerationReport {
            generation,
            population,
            evaluations,
            cache_hits,
            nan_evaluations,
            history,
            memo,
            seed,
        }
    }

    /// The best fitness after this generation.
    #[must_use]
    pub fn best_fitness(&self) -> f64 {
        self.population[0].fitness
    }

    /// The convergence curve so far (one entry per completed generation).
    #[must_use]
    pub fn history(&self) -> &[f64] {
        self.history
    }

    /// Builds a complete, resumable snapshot of the run at this point.
    ///
    /// The snapshot includes the memo cache (sorted by genes, so equal run
    /// states serialize identically), which is what makes a resumed run
    /// reproduce the uninterrupted run's evaluation counters exactly — not
    /// just its trajectory. Constructing it clones the population and the
    /// memo; call it only when actually persisting (e.g. every N
    /// generations).
    #[must_use]
    pub fn checkpoint(&self) -> GaCheckpoint {
        let mut memo: Vec<Individual> = self
            .memo
            .iter()
            .map(|(genes, &fitness)| Individual { genes: genes.clone(), fitness })
            .collect();
        memo.sort_by(|a, b| a.genes.cmp(&b.genes));
        GaCheckpoint {
            seed: self.seed,
            generations_done: self.generation + 1,
            population: self.population.to_vec(),
            history: self.history.to_vec(),
            evaluations: self.evaluations,
            cache_hits: self.cache_hits,
            nan_evaluations: self.nan_evaluations,
            memo,
        }
    }
}

/// Observer of GA progress; all methods default to no-ops.
///
/// Implementations must be `Sync` (the engine itself calls the hooks from
/// the breeding thread, but observers are routinely shared across the
/// per-mode optimization threads of the LUT flow).
pub trait GaObserver: Sync {
    /// Generation `report.generation` finished breeding and scoring.
    fn generation_finished(&self, report: &GenerationReport<'_>) {
        let _ = report;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GaConfig, GeneticAlgorithm, SearchSpace};
    use std::sync::Mutex;

    #[test]
    fn observer_sees_every_generation_in_order() {
        struct Recorder(Mutex<Vec<(usize, f64, u64)>>);
        impl GaObserver for Recorder {
            fn generation_finished(&self, report: &GenerationReport<'_>) {
                assert_eq!(report.history().len(), report.generation + 1);
                assert_eq!(report.best_fitness(), report.history()[report.generation]);
                self.0.lock().unwrap().push((
                    report.generation,
                    report.best_fitness(),
                    report.evaluations,
                ));
            }
        }
        let recorder = Recorder(Mutex::new(Vec::new()));
        let space = SearchSpace::new(vec![(0, 999); 2]);
        let config = GaConfig { population: 8, generations: 6, ..Default::default() };
        let outcome = GeneticAlgorithm::new(space, config)
            .run_observed(&[], &recorder, |g| g.iter().sum::<u64>() as f64)
            .unwrap();
        let seen = recorder.0.into_inner().unwrap();
        assert_eq!(seen.len(), 6);
        for (i, (generation, best, _)) in seen.iter().enumerate() {
            assert_eq!(*generation, i);
            assert_eq!(*best, outcome.history[i]);
        }
        assert_eq!(seen.last().unwrap().2, outcome.evaluations);
    }

    #[test]
    fn checkpoints_from_equal_states_are_identical() {
        struct Snap(Mutex<Vec<GaCheckpoint>>);
        impl GaObserver for Snap {
            fn generation_finished(&self, report: &GenerationReport<'_>) {
                self.0.lock().unwrap().push(report.checkpoint());
            }
        }
        let space = SearchSpace::new(vec![(0, 50); 3]);
        let config = GaConfig { population: 10, generations: 4, ..Default::default() };
        let f = |g: &[u64]| g.iter().map(|&x| (x as f64 - 25.0).abs()).sum::<f64>();
        let (a, b) = (Snap(Mutex::new(Vec::new())), Snap(Mutex::new(Vec::new())));
        let ga = GeneticAlgorithm::new(space, config);
        ga.run_observed(&[], &a, f).unwrap();
        ga.run_observed(&[], &b, f).unwrap();
        // Memo-map iteration order is not deterministic, but checkpoints
        // sort it — identical runs must snapshot identically.
        assert_eq!(a.0.into_inner().unwrap(), b.0.into_inner().unwrap());
    }
}
