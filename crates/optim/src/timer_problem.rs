//! The CoHoRT timer-configuration problem (§V) on top of the GA engine.

use cohort_analysis::{analysis_cache, wcl_miss, wcml_snoop, wcml_timed};
use cohort_sim::{CacheGeometry, LlcModel};
use cohort_trace::Workload;
use cohort_types::{Cycles, Error, LatencyConfig, Result, TimerValue};

use crate::observer::GaObserver;
use crate::{GaConfig, GaOutcome, GeneticAlgorithm, SearchSpace};

/// Fixed penalty added once per violated constraint: larger than any
/// attainable objective value (the objective sums per-core *mean* latencies,
/// each bounded by a per-request WCL ≤ ~10⁶ cycles), so any infeasible
/// candidate scores worse than every feasible one regardless of how small
/// the relative violation is.
const PENALTY_BASE: f64 = 1.0e12;
/// Additional weight per unit of relative violation, giving the GA a
/// gradient from "badly infeasible" toward "barely infeasible".
const PENALTY: f64 = 1.0e9;

/// One optimization problem instance: which cores are timed, their
/// requirements, and the workload whose cache behaviour drives M_hit.
///
/// Build with [`TimerProblem::builder`]; solve with [`optimize_timers`].
///
/// Fitness evaluations are memoized through the process-wide
/// [`analysis_cache`], so repeated GA runs over the same workload — and
/// concurrent runs on other threads (e.g. per-mode configuration) — share
/// each other's guaranteed-hit curves.
#[derive(Debug)]
pub struct TimerProblem<'w> {
    workload: &'w Workload,
    latency: LatencyConfig,
    l1: CacheGeometry,
    llc: LlcModel,
    /// `Some(requirement)` for timed cores (requirement optional), `None`
    /// for cores pinned to MSI.
    roles: Vec<CoreRole>,
    /// Indices of the timed cores, in core order (the GA's genes).
    timed: Vec<usize>,
    /// Per timed core: the saturation timer bounding the search.
    theta_sat: Vec<u64>,
    /// Per-core trace fingerprints, precomputed so the hot fitness loop
    /// queries the shared analysis cache without re-hashing the traces.
    fingerprints: Vec<u128>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreRole {
    Timed { requirement: Option<Cycles> },
    Msi,
}

/// Builder for [`TimerProblem`]. Cores default to MSI; mark the timed ones
/// with [`TimerProblemBuilder::timed`].
#[derive(Debug)]
pub struct TimerProblemBuilder<'w> {
    workload: &'w Workload,
    latency: LatencyConfig,
    l1: CacheGeometry,
    llc: LlcModel,
    roles: Vec<CoreRole>,
}

impl<'w> TimerProblemBuilder<'w> {
    /// Marks a core as running time-based coherence, optionally with a
    /// WCML requirement Γ (constraint C1).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range for the workload.
    #[must_use]
    pub fn timed(mut self, core: usize, requirement: Option<Cycles>) -> Self {
        assert!(core < self.roles.len(), "core {core} out of range");
        self.roles[core] = CoreRole::Timed { requirement };
        self
    }

    /// Overrides the latency configuration (defaults to the paper's).
    #[must_use]
    pub fn latency(mut self, latency: LatencyConfig) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the private-cache geometry (defaults to the paper's).
    #[must_use]
    pub fn l1(mut self, l1: CacheGeometry) -> Self {
        self.l1 = l1;
        self
    }

    /// Declares the LLC model the system will run with (defaults to the
    /// paper's perfect LLC). With a finite LLC, back-invalidation voids the
    /// guaranteed-hit analysis, so the optimizer scores every core with the
    /// all-miss Eq. 3 bound instead.
    #[must_use]
    pub fn llc(mut self, llc: LlcModel) -> Self {
        self.llc = llc;
        self
    }

    /// Finalises the problem, computing each timed core's θ_sat (the upper
    /// bound of its search box, found by sweeping in isolation — the
    /// paper's procedure). Note the deliberate approximation: the sweep
    /// uses the uncontended miss penalty, while the fitness evaluates hit
    /// curves under the contended per-request WCL, whose stretched timeline
    /// can keep rewarding timers slightly above this box. Matching the
    /// paper keeps the search box small; the corner seeds in
    /// [`GaRun::run`] cover the box edges.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if no core is timed — with every
    /// core on MSI there is nothing to optimize.
    pub fn build(self) -> Result<TimerProblem<'w>> {
        let timed: Vec<usize> = self
            .roles
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, CoreRole::Timed { .. }))
            .map(|(i, _)| i)
            .collect();
        if timed.is_empty() {
            return Err(Error::InvalidConfig(
                "at least one core must be timed for the optimization to have variables".into(),
            ));
        }
        let fingerprints: Vec<u128> =
            self.workload.traces().iter().map(cohort_trace::Trace::fingerprint).collect();
        let theta_sat = timed
            .iter()
            .map(|&i| {
                analysis_cache().theta_saturation_fp(
                    fingerprints[i],
                    &self.workload.traces()[i],
                    &self.l1,
                    self.latency.hit,
                    self.latency.slot_width(),
                )
            })
            .collect();
        Ok(TimerProblem {
            workload: self.workload,
            latency: self.latency,
            l1: self.l1,
            llc: self.llc,
            roles: self.roles,
            timed,
            theta_sat,
            fingerprints,
        })
    }
}

impl<'w> TimerProblem<'w> {
    /// Starts building a problem over `workload` with the paper's default
    /// latencies and cache geometry; all cores start as MSI.
    #[must_use]
    pub fn builder(workload: &'w Workload) -> TimerProblemBuilder<'w> {
        TimerProblemBuilder {
            workload,
            latency: LatencyConfig::paper(),
            l1: CacheGeometry::paper_l1(),
            llc: LlcModel::Perfect,
            roles: vec![CoreRole::Msi; workload.cores()],
        }
    }

    /// The GA search space: one gene per timed core, `1..=θ_sat`, sampled
    /// log-uniformly — θ_sat can be tens of thousands of cycles while the
    /// feasible (small-WCL) region sits at tens of cycles.
    #[must_use]
    pub fn search_space(&self) -> SearchSpace {
        SearchSpace::logarithmic(self.theta_sat.iter().map(|&s| (1, s)).collect())
    }

    /// The timed cores' indices, in gene order.
    #[must_use]
    pub fn timed_cores(&self) -> &[usize] {
        &self.timed
    }

    /// The per-gene saturation timers θ_sat.
    #[must_use]
    pub fn theta_saturations(&self) -> &[u64] {
        &self.theta_sat
    }

    /// Expands a chromosome into the full per-core timer vector.
    #[must_use]
    pub fn timers_from_genes(&self, genes: &[u64]) -> Vec<TimerValue> {
        let mut timers = vec![TimerValue::MSI; self.workload.cores()];
        for (&core, &theta) in self.timed.iter().zip(genes) {
            timers[core] = TimerValue::timed(theta).expect("θ_sat is within register range");
        }
        timers
    }

    /// Guaranteed hit/miss counts for one core, memoized in the shared
    /// [`analysis_cache`] on (trace, θ, geometry, latencies). Under a
    /// finite LLC no hits are guaranteed (back-invalidation).
    fn counts(&self, core: usize, timer: TimerValue, wcl: Cycles) -> (u64, u64) {
        if !self.llc.is_perfect() {
            return (0, self.workload.traces()[core].len() as u64);
        }
        let counts = analysis_cache().guaranteed_hits_fp(
            self.fingerprints[core],
            &self.workload.traces()[core],
            timer,
            &self.l1,
            self.latency.hit,
            wcl,
        );
        (counts.hits, counts.misses)
    }

    /// The §V fitness: mean per-access worst-case latency summed over all
    /// cores, plus a large penalty per unit of relative C1 violation.
    /// Lower is better.
    #[must_use]
    pub fn fitness(&self, genes: &[u64]) -> f64 {
        let timers = self.timers_from_genes(genes);
        let mut objective = 0.0;
        let mut penalty = 0.0;
        for (core, role) in self.roles.iter().enumerate() {
            let wcl = wcl_miss(core, &timers, &self.latency);
            let accesses = self.workload.traces()[core].len() as u64;
            if accesses == 0 {
                continue;
            }
            let wcml = match role {
                CoreRole::Timed { requirement } => {
                    let (hits, misses) = self.counts(core, timers[core], wcl);
                    let wcml = wcml_timed(hits, misses, self.latency.hit, wcl);
                    if let Some(gamma) = requirement {
                        if wcml > *gamma {
                            penalty += PENALTY_BASE
                                + PENALTY
                                    * ((wcml.get() - gamma.get()) as f64
                                        / gamma.get().max(1) as f64);
                        }
                    }
                    wcml
                }
                CoreRole::Msi => wcml_snoop(accesses, wcl),
            };
            objective += wcml.get() as f64 / accesses as f64;
        }
        objective + penalty
    }

    /// Evaluates a full assignment into per-core bounds and feasibility.
    #[must_use]
    pub fn evaluate(&self, genes: &[u64]) -> TimerAssignment {
        let timers = self.timers_from_genes(genes);
        let mut bounds = Vec::with_capacity(self.roles.len());
        let mut feasible = true;
        for (core, role) in self.roles.iter().enumerate() {
            let wcl = wcl_miss(core, &timers, &self.latency);
            let accesses = self.workload.traces()[core].len() as u64;
            let (hits, misses, wcml) = match role {
                CoreRole::Timed { requirement } => {
                    let (hits, misses) = self.counts(core, timers[core], wcl);
                    let wcml = wcml_timed(hits, misses, self.latency.hit, wcl);
                    if requirement.is_some_and(|g| wcml > g) {
                        feasible = false;
                    }
                    (hits, misses, wcml)
                }
                CoreRole::Msi => (0, accesses, wcml_snoop(accesses, wcl)),
            };
            bounds.push(cohort_analysis::CoreBound {
                hits,
                misses,
                wcl: Some(wcl),
                wcml: Some(wcml),
            });
        }
        TimerAssignment { timers, bounds, feasible, fitness: self.fitness(genes) }
    }
}

/// The solved configuration: timers, per-core bounds, feasibility.
#[derive(Debug, Clone)]
pub struct TimerAssignment {
    /// Per-core timer registers (MSI cores keep θ = −1).
    pub timers: Vec<TimerValue>,
    /// Per-core analytical bounds under these timers.
    pub bounds: Vec<cohort_analysis::CoreBound>,
    /// Whether every C1 constraint is met.
    pub feasible: bool,
    /// The fitness value of the solution (objective + penalties).
    pub fitness: f64,
}

/// One configured GA run over a [`TimerProblem`] — the single driver
/// behind every optimizer entry point (the flow of the paper's Fig. 2a).
///
/// Build it with [`GaRun::new`], chain the optional pieces, and finish
/// with [`GaRun::run`] (raw [`GaOutcome`], never fails) or
/// [`GaRun::run_feasible`] (evaluated [`TimerAssignment`], errors when
/// the best chromosome still violates a C1 constraint):
///
/// ```
/// use cohort_optim::{GaConfig, GaRun, TimerProblem};
/// use cohort_trace::micro;
///
/// let workload = micro::line_bursts(2, 4, 60);
/// let problem = TimerProblem::builder(&workload).timed(0, None).timed(1, None).build()?;
/// let config = GaConfig { population: 12, generations: 6, ..Default::default() };
/// let outcome = GaRun::new(&problem).config(&config).run();
/// assert_eq!(outcome.best.len(), problem.timed_cores().len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Seed chromosomes added with [`GaRun::seed`] / [`GaRun::seeds`] join
/// the initial population *after* the engine's corner seeds — the
/// Mode-Switch LUT flow seeds each mode with the previous mode's solution
/// so escalated modes refine (rather than rediscover) the normal mode's
/// timers. Seeds beyond the population capacity are **dropped from the
/// back** (deliberate, documented truncation — the engine itself errors
/// on overflow, so the drop here is an explicit policy, not an accident).
pub struct GaRun<'a, 'w> {
    problem: &'a TimerProblem<'w>,
    config: GaConfig,
    extra_seeds: Vec<Vec<u64>>,
    observer: Option<&'a dyn GaObserver>,
}

impl<'a, 'w> GaRun<'a, 'w> {
    /// Starts a run over `problem` with a default [`GaConfig`], no extra
    /// seeds and no observer.
    #[must_use]
    pub fn new(problem: &'a TimerProblem<'w>) -> Self {
        GaRun { problem, config: GaConfig::default(), extra_seeds: Vec::new(), observer: None }
    }

    /// Replaces the engine configuration (population, generations, seed,
    /// early-stopping policy, …).
    #[must_use]
    pub fn config(mut self, config: &GaConfig) -> Self {
        self.config = config.clone();
        self
    }

    /// Appends one seed chromosome to the initial population. Seeds whose
    /// length does not match the problem's timed-core count are ignored;
    /// genes are clamped into the search box (a previous mode's θ may
    /// exceed this mode's saturation bound).
    #[must_use]
    pub fn seed(mut self, chromosome: Vec<u64>) -> Self {
        self.extra_seeds.push(chromosome);
        self
    }

    /// Appends several seed chromosomes (see [`GaRun::seed`]).
    #[must_use]
    pub fn seeds<I: IntoIterator<Item = Vec<u64>>>(mut self, chromosomes: I) -> Self {
        self.extra_seeds.extend(chromosomes);
        self
    }

    /// Attaches a [`GaObserver`] progress hook (per-generation best
    /// fitness, evaluation counters and checkpoint opportunities).
    #[must_use]
    pub fn observer(mut self, observer: &'a dyn GaObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs the GA and returns the raw outcome — used by the convergence
    /// benches and by callers that want the best-effort infeasible
    /// solution.
    #[must_use]
    pub fn run(self) -> GaOutcome {
        let ga = GeneticAlgorithm::new(self.problem.search_space(), self.config.clone());
        // Seed with the extreme corners — all-minimal (tightest WCL) and
        // all-saturated (most hits) — plus a small uniform heuristic (a
        // window of a few dozen cycles covers word-granular line bursts,
        // the dominant source of guaranteed hits), then any caller-provided
        // chromosomes.
        let genes = self.problem.timed_cores().len();
        let minimal = vec![1u64; genes];
        let saturated = self.problem.theta_saturations().to_vec();
        let heuristic: Vec<u64> =
            self.problem.theta_saturations().iter().map(|&s| s.min(24)).collect();
        let mut seeds = vec![minimal, saturated, heuristic];
        seeds.extend(self.extra_seeds.iter().filter(|s| s.len() == genes).map(|s| {
            s.iter()
                .zip(self.problem.theta_saturations())
                .map(|(&g, &sat)| g.clamp(1, sat))
                .collect::<Vec<u64>>()
        }));
        seeds.truncate(self.config.population);
        let observer = self.observer.unwrap_or(&NoGaObserver);
        ga.run_observed(&seeds, observer, |genes| self.problem.fitness(genes))
            .expect("corner seeds are in-space and truncated to the population")
    }

    /// Runs the GA and evaluates the winner into a [`TimerAssignment`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] if the best solution found still
    /// violates a C1 constraint — the caller (e.g. the mode controller)
    /// treats this as "this mode is unschedulable".
    pub fn run_feasible(self) -> Result<TimerAssignment> {
        let problem = self.problem;
        let outcome = self.run();
        let assignment = problem.evaluate(&outcome.best);
        if !assignment.feasible {
            return Err(Error::Infeasible(format!(
                "best assignment {:?} still violates a WCML requirement",
                assignment.timers
            )));
        }
        Ok(assignment)
    }
}

/// Runs the GA over a [`TimerProblem`] (the flow of the paper's Fig. 2a).
///
/// Shorthand for [`GaRun::run_feasible`] with no extra seeds or observer.
///
/// # Errors
///
/// Returns [`Error::Infeasible`] if the best solution found still violates
/// a C1 constraint — the caller (e.g. the mode controller) treats this as
/// "this mode is unschedulable".
///
/// # Examples
///
/// See the crate-level example.
pub fn optimize_timers(problem: &TimerProblem<'_>, config: &GaConfig) -> Result<TimerAssignment> {
    GaRun::new(problem).config(config).run_feasible()
}

/// The do-nothing observer behind a [`GaRun`] with no explicit observer.
struct NoGaObserver;

impl GaObserver for NoGaObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_trace::micro;

    fn bursts() -> Workload {
        micro::line_bursts(2, 4, 60)
    }

    #[test]
    fn optimizer_finds_feasible_timers() {
        let w = bursts();
        let problem = TimerProblem::builder(&w)
            .timed(0, Some(Cycles::new(60_000)))
            .timed(1, Some(Cycles::new(60_000)))
            .build()
            .unwrap();
        let config = GaConfig { population: 24, generations: 20, ..Default::default() };
        let assignment = optimize_timers(&problem, &config).unwrap();
        assert!(assignment.feasible);
        for core in 0..2 {
            assert!(assignment.bounds[core].wcml.unwrap() <= Cycles::new(60_000));
            assert!(assignment.bounds[core].hits > 0, "bursts yield guaranteed hits");
        }
    }

    #[test]
    fn impossible_requirement_is_reported_infeasible() {
        let w = bursts();
        let problem = TimerProblem::builder(&w)
            .timed(0, Some(Cycles::new(10)))
            .timed(1, None)
            .build()
            .unwrap();
        let config = GaConfig { population: 16, generations: 8, ..Default::default() };
        let err = optimize_timers(&problem, &config).unwrap_err();
        assert!(matches!(err, Error::Infeasible(_)));
    }

    #[test]
    fn all_msi_problem_is_rejected() {
        let w = bursts();
        assert!(TimerProblem::builder(&w).build().is_err());
    }

    #[test]
    fn genes_map_only_to_timed_cores() {
        let w = micro::line_bursts(3, 3, 20);
        let problem = TimerProblem::builder(&w).timed(1, None).build().unwrap();
        assert_eq!(problem.timed_cores(), &[1]);
        let timers = problem.timers_from_genes(&[42]);
        assert!(timers[0].is_msi());
        assert_eq!(timers[1].theta(), Some(42));
        assert!(timers[2].is_msi());
    }

    #[test]
    fn penalty_dominates_objective() {
        // A violating assignment must always score worse than a feasible
        // one, no matter how good its objective is.
        let w = bursts();
        let problem = TimerProblem::builder(&w)
            .timed(0, Some(Cycles::new(40_000)))
            .timed(1, None)
            .build()
            .unwrap();
        let feasible = problem.fitness(&[2, 2]);
        let sat = problem.theta_saturations().to_vec();
        // Saturated timers inflate c0's WCL via c1's θ... check both ways:
        // if the saturated point is feasible this assertion is vacuous, so
        // construct an explicit violation via evaluate().
        let sat_eval = problem.evaluate(&sat);
        if !sat_eval.feasible {
            assert!(problem.fitness(&sat) > feasible + 1.0e6);
        }
    }

    #[test]
    fn optimization_is_deterministic() {
        let w = bursts();
        let problem = TimerProblem::builder(&w).timed(0, None).timed(1, None).build().unwrap();
        let config = GaConfig { population: 12, generations: 6, ..Default::default() };
        let a = GaRun::new(&problem).config(&config).run();
        let b = GaRun::new(&problem).config(&config).run();
        assert_eq!(a, b);
    }

    #[test]
    fn search_space_uses_saturation_bounds() {
        let w = bursts();
        let problem = TimerProblem::builder(&w).timed(0, None).timed(1, None).build().unwrap();
        let space = problem.search_space();
        for g in 0..space.genes() {
            let (lo, hi) = space.bound(g);
            assert_eq!(lo, 1);
            assert_eq!(hi, problem.theta_saturations()[g]);
            assert!(hi >= 1);
        }
    }
}
