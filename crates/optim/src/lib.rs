//! Genetic-algorithm optimization engine for coherence timer configuration.
//!
//! Implements §V of the CoHoRT paper: an offline optimizer that picks the
//! set of timer thresholds Θ so that every task on a timed core meets its
//! WCML requirement (constraint C1) while the *total average worst-case
//! memory latency* of the system is minimised:
//!
//! ```text
//! minimise  Σ_i (M_hit,i · L_hit + M_miss,i · WCL_i) / M_total,i
//! s.t.      M_hit,j · L_hit + M_miss,j · WCL_j ≤ Γ_j   ∀ timed j   (C1)
//!           1 ≤ θ_i ≤ θ_sat,i
//! ```
//!
//! The Θ→`WCL` relationship is closed-form (Eq. 1), but Θ→`M_hit` depends
//! on the application's memory behaviour, so — exactly as in the paper's
//! Figure 2a — the engine treats the static cache analysis
//! ([`cohort_analysis::guaranteed_hits`]) as a black box: the GA proposes a
//! candidate Θ, the cache model returns the guaranteed hit counts, and the
//! engine scores the candidate.
//!
//! The crate provides a reusable, deterministic [`GeneticAlgorithm`] over
//! bounded integer chromosomes and the CoHoRT-specific [`TimerProblem`] /
//! [`GaRun`] driver (with the [`optimize_timers`] shorthand) on top of it. The engine breeds each generation
//! sequentially from its seed, then scores the offspring batch across
//! scoped worker threads — **parallel runs are bit-identical to serial
//! runs** — with a genome-keyed fitness memo, optional early stopping
//! (stall / target / evaluation budget), a [`GaObserver`] progress hook
//! and JSON [`GaCheckpoint`] snapshots that [`GeneticAlgorithm::resume`]
//! continues exactly where they left off.
//!
//! # Examples
//!
//! ```
//! use cohort_optim::{optimize_timers, TimerProblem};
//! use cohort_trace::micro;
//! use cohort_types::{Cycles, LatencyConfig};
//!
//! // Two timed cores with a generous requirement: the GA finds timers that
//! // keep both bounds under budget.
//! let workload = micro::line_bursts(2, 4, 50);
//! let problem = TimerProblem::builder(&workload)
//!     .timed(0, Some(Cycles::new(100_000)))
//!     .timed(1, Some(Cycles::new(100_000)))
//!     .build()?;
//! let assignment = optimize_timers(&problem, &Default::default())?;
//! assert!(assignment.feasible);
//! assert!(assignment.timers[0].is_timed());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod ga;
mod observer;
mod timer_problem;

pub use checkpoint::{CheckpointFile, GaCheckpoint};
pub use ga::{GaConfig, GaOutcome, GeneticAlgorithm, Individual, SearchSpace, StopReason};
pub use observer::{GaObserver, GenerationReport};
pub use timer_problem::{
    optimize_timers, GaRun, TimerAssignment, TimerProblem, TimerProblemBuilder,
};
