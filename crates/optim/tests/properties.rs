//! Property-based tests of the GA engine and the timer problem.

use proptest::prelude::*;

use cohort_optim::GaConfig;

#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn small_config() -> GaConfig {
    GaConfig { population: 12, generations: 6, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The GA never emits a chromosome outside the search space, and the
    /// convergence history is monotone non-increasing (elitism).
    #[test]
    fn ga_respects_bounds_and_monotonicity(
        bounds in proptest::collection::vec((1u64..100, 0u64..5_000), 1..5),
        seed in any::<u64>(),
    ) {
        let bounds: Vec<(u64, u64)> = bounds.into_iter().map(|(lo, span)| (lo, lo + span)).collect();
        let space = SearchSpace::new(bounds.clone());
        let ga = GeneticAlgorithm::new(space.clone(), GaConfig { seed, ..small_config() });
        let outcome = ga.run(|genes| genes.iter().map(|&g| g as f64).sum());
        prop_assert!(space.contains(&outcome.best));
        for w in outcome.history.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
        // The optimum of a monotone objective is the all-low corner; the GA
        // must at least not do worse than a random guess bound.
        let low: f64 = bounds.iter().map(|&(lo, _)| lo as f64).sum();
        let high: f64 = bounds.iter().map(|&(_, hi)| hi as f64).sum();
        prop_assert!(outcome.best_fitness >= low - 1e-9);
        prop_assert!(outcome.best_fitness <= high + 1e-9);
    }

    /// Log-scale spaces also respect bounds for extreme ranges.
    #[test]
    fn log_space_respects_bounds(hi in 1u64..60_000, seed in any::<u64>()) {
        let space = SearchSpace::logarithmic(vec![(1, hi.max(1)); 3]);
        let ga = GeneticAlgorithm::new(space.clone(), GaConfig { seed, ..small_config() });
        let outcome = ga.run(|genes| genes.iter().map(|&g| g as f64).sum());
        prop_assert!(space.contains(&outcome.best));
    }

    /// Identical (problem, config) pairs give identical outcomes.
    #[test]
    fn ga_is_deterministic(seed in any::<u64>()) {
        let space = SearchSpace::new(vec![(0, 999); 3]);
        let config = GaConfig { seed, ..small_config() };
        let f = |genes: &[u64]| genes.iter().map(|&g| (g as f64 - 500.0).abs()).sum();
        let a = GeneticAlgorithm::new(space.clone(), config.clone()).run(f);
        let b = GeneticAlgorithm::new(space, config).run(f);
        prop_assert_eq!(a, b);
    }

    /// A feasible seed never makes the outcome infeasible: fitness of the
    /// GA's best is ≤ the seed's fitness (elitism preserves it).
    #[test]
    fn seeding_never_hurts(seed_genes in proptest::collection::vec(1u64..40, 2)) {
        let workload = micro::line_bursts(2, 4, 40);
        let problem = TimerProblem::builder(&workload)
            .timed(0, Some(Cycles::new(1_000_000)))
            .timed(1, None)
            .build()
            .unwrap();
        let clamped: Vec<u64> = seed_genes
            .iter()
            .zip(problem.theta_saturations())
            .map(|(&g, &sat)| g.min(sat))
            .collect();
        let seed_fitness = problem.fitness(&clamped);
        let space = problem.search_space();
        let ga = GeneticAlgorithm::new(space, small_config());
        let outcome = ga.run_seeded(&[clamped], |g| problem.fitness(g));
        prop_assert!(outcome.best_fitness <= seed_fitness + 1e-9);
    }

    /// The timer-problem fitness is a pure function of the genes.
    #[test]
    fn fitness_is_pure(genes in proptest::collection::vec(1u64..64, 2)) {
        let workload = micro::line_bursts(2, 3, 30);
        let problem =
            TimerProblem::builder(&workload).timed(0, None).timed(1, None).build().unwrap();
        let clamped: Vec<u64> = genes
            .iter()
            .zip(problem.theta_saturations())
            .map(|(&g, &sat)| g.min(sat))
            .collect();
        prop_assert_eq!(problem.fitness(&clamped), problem.fitness(&clamped));
    }
}
