//! Property-based tests of the GA engine and the timer problem.
//!
//! The proptest blocks run under the real `proptest` crate (CI); the plain
//! `#[test]` functions below them cover the same invariants at fixed seeds
//! so they also execute under the offline stub harness, where `proptest!`
//! expands to nothing.

use proptest::prelude::*;

use cohort_optim::{
    GaCheckpoint, GaConfig, GaObserver, GenerationReport, GeneticAlgorithm, SearchSpace,
    TimerProblem,
};
use cohort_trace::micro;
use cohort_types::Cycles;
use std::sync::Mutex;

fn small_config() -> GaConfig {
    GaConfig { population: 12, generations: 6, ..Default::default() }
}

/// Captures the checkpoint of one chosen generation.
struct SnapshotAt {
    generation: usize,
    checkpoint: Mutex<Option<GaCheckpoint>>,
}

impl SnapshotAt {
    fn new(generation: usize) -> Self {
        SnapshotAt { generation, checkpoint: Mutex::new(None) }
    }

    fn take(self) -> Option<GaCheckpoint> {
        self.checkpoint.into_inner().unwrap()
    }
}

impl GaObserver for SnapshotAt {
    fn generation_finished(&self, report: &GenerationReport<'_>) {
        if report.generation == self.generation {
            *self.checkpoint.lock().unwrap() = Some(report.checkpoint());
        }
    }
}

/// Runs the parallel/serial equivalence check for one configuration.
fn assert_parallel_matches_serial(seed: u64, population: usize, workers: usize) {
    let space = SearchSpace::new(vec![(0, 50_000); 4]);
    let f = |genes: &[u64]| genes.iter().map(|&g| (g as f64 - 25_000.0).abs()).sum::<f64>();
    let serial = GeneticAlgorithm::new(
        space.clone(),
        GaConfig { seed, population, workers: 1, ..small_config() },
    )
    .run_seeded(&[vec![42, 42, 42, 42]], f)
    .unwrap();
    let parallel =
        GeneticAlgorithm::new(space, GaConfig { seed, population, workers, ..small_config() })
            .run_seeded(&[vec![42, 42, 42, 42]], f)
            .unwrap();
    assert_eq!(serial, parallel, "seed {seed}, population {population}, workers {workers}");
}

/// Runs the checkpoint/resume equivalence check for one configuration.
fn assert_resume_matches_uninterrupted(seed: u64, cut_after: usize, workers: usize) {
    let space = SearchSpace::new(vec![(1, 9_999); 3]);
    let f = |genes: &[u64]| genes.iter().map(|&g| (g as f64 - 777.0).powi(2)).sum::<f64>();
    let config = GaConfig { seed, generations: 8, workers, ..small_config() };
    let ga = GeneticAlgorithm::new(space, config);

    let snap = SnapshotAt::new(cut_after);
    let full = ga.run_observed(&[], &snap, f).unwrap();
    let checkpoint = snap.take().expect("observed generation ran");

    // Round-trip through the JSON codec, then resume: outcome, history and
    // the evaluation counters must all match the uninterrupted run.
    let restored = GaCheckpoint::from_json(&checkpoint.to_json()).unwrap();
    let resumed = ga.resume(&restored, f).unwrap();
    assert_eq!(resumed, full, "seed {seed}, cut after generation {cut_after}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The GA never emits a chromosome outside the search space, and the
    /// convergence history is monotone non-increasing (elitism).
    #[test]
    fn ga_respects_bounds_and_monotonicity(
        bounds in proptest::collection::vec((1u64..100, 0u64..5_000), 1..5),
        seed in any::<u64>(),
    ) {
        let bounds: Vec<(u64, u64)> = bounds.into_iter().map(|(lo, span)| (lo, lo + span)).collect();
        let space = SearchSpace::new(bounds.clone());
        let ga = GeneticAlgorithm::new(space.clone(), GaConfig { seed, ..small_config() });
        let outcome = ga.run(|genes| genes.iter().map(|&g| g as f64).sum());
        prop_assert!(space.contains(&outcome.best));
        for w in outcome.history.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
        // The optimum of a monotone objective is the all-low corner; the GA
        // must at least not do worse than a random guess bound.
        let low: f64 = bounds.iter().map(|&(lo, _)| lo as f64).sum();
        let high: f64 = bounds.iter().map(|&(_, hi)| hi as f64).sum();
        prop_assert!(outcome.best_fitness >= low - 1e-9);
        prop_assert!(outcome.best_fitness <= high + 1e-9);
    }

    /// Log-scale spaces also respect bounds for extreme ranges.
    #[test]
    fn log_space_respects_bounds(hi in 1u64..60_000, seed in any::<u64>()) {
        let space = SearchSpace::logarithmic(vec![(1, hi.max(1)); 3]);
        let ga = GeneticAlgorithm::new(space.clone(), GaConfig { seed, ..small_config() });
        let outcome = ga.run(|genes| genes.iter().map(|&g| g as f64).sum());
        prop_assert!(space.contains(&outcome.best));
    }

    /// Identical (problem, config) pairs give identical outcomes.
    #[test]
    fn ga_is_deterministic(seed in any::<u64>()) {
        let space = SearchSpace::new(vec![(0, 999); 3]);
        let config = GaConfig { seed, ..small_config() };
        let f = |genes: &[u64]| genes.iter().map(|&g| (g as f64 - 500.0).abs()).sum();
        let a = GeneticAlgorithm::new(space.clone(), config.clone()).run(f);
        let b = GeneticAlgorithm::new(space, config).run(f);
        prop_assert_eq!(a, b);
    }

    /// Parallel evaluation is bit-identical to serial for any seed and any
    /// population / worker-count combination — including the evaluation and
    /// cache-hit counters.
    #[test]
    fn parallel_run_is_bit_identical_to_serial(
        seed in any::<u64>(),
        population in 4usize..24,
        workers in 2usize..9,
    ) {
        assert_parallel_matches_serial(seed, population, workers);
    }

    /// A checkpoint taken after any generation, round-tripped through its
    /// JSON codec and resumed, reproduces the uninterrupted run exactly.
    #[test]
    fn checkpoint_resume_reproduces_the_uninterrupted_run(
        seed in any::<u64>(),
        cut_after in 0usize..7,
        workers in 1usize..5,
    ) {
        assert_resume_matches_uninterrupted(seed, cut_after, workers);
    }

    /// A feasible seed never makes the outcome infeasible: fitness of the
    /// GA's best is ≤ the seed's fitness (elitism preserves it).
    #[test]
    fn seeding_never_hurts(seed_genes in proptest::collection::vec(1u64..40, 2)) {
        let workload = micro::line_bursts(2, 4, 40);
        let problem = TimerProblem::builder(&workload)
            .timed(0, Some(Cycles::new(1_000_000)))
            .timed(1, None)
            .build()
            .unwrap();
        let clamped: Vec<u64> = seed_genes
            .iter()
            .zip(problem.theta_saturations())
            .map(|(&g, &sat)| g.min(sat))
            .collect();
        let seed_fitness = problem.fitness(&clamped);
        let space = problem.search_space();
        let ga = GeneticAlgorithm::new(space, small_config());
        let outcome = ga.run_seeded(&[clamped], |g| problem.fitness(g)).unwrap();
        prop_assert!(outcome.best_fitness <= seed_fitness + 1e-9);
    }

    /// The timer-problem fitness is a pure function of the genes.
    #[test]
    fn fitness_is_pure(genes in proptest::collection::vec(1u64..64, 2)) {
        let workload = micro::line_bursts(2, 3, 30);
        let problem =
            TimerProblem::builder(&workload).timed(0, None).timed(1, None).build().unwrap();
        let clamped: Vec<u64> = genes
            .iter()
            .zip(problem.theta_saturations())
            .map(|(&g, &sat)| g.min(sat))
            .collect();
        prop_assert_eq!(problem.fitness(&clamped), problem.fitness(&clamped));
    }
}

// ---------------------------------------------------------------------------
// Fixed-seed variants: the same invariants, runnable under the offline stub
// harness (where `proptest!` swallows its body).
// ---------------------------------------------------------------------------

#[test]
fn parallel_matches_serial_across_fixed_combinations() {
    for (seed, population, workers) in
        [(0u64, 12usize, 2usize), (1, 7, 3), (0xDEAD_BEEF, 16, 8), (42, 5, 4)]
    {
        assert_parallel_matches_serial(seed, population, workers);
    }
}

#[test]
fn resume_matches_uninterrupted_across_fixed_cuts() {
    for (seed, cut_after, workers) in [(0u64, 0usize, 1usize), (7, 3, 2), (99, 6, 4)] {
        assert_resume_matches_uninterrupted(seed, cut_after, workers);
    }
}

#[test]
fn timer_solve_is_identical_serial_and_parallel() {
    // The real fitness (cache analysis + Eq. 1) through `GaRun`, serial vs
    // parallel: the shipped Mode-Switch LUT must not depend on the host's
    // core count.
    let workload = micro::line_bursts(2, 4, 60);
    let problem = TimerProblem::builder(&workload)
        .timed(0, Some(Cycles::new(1_000_000)))
        .timed(1, None)
        .build()
        .unwrap();
    let serial = cohort_optim::GaRun::new(&problem)
        .config(&GaConfig { population: 12, generations: 8, workers: 1, ..Default::default() })
        .run();
    let parallel = cohort_optim::GaRun::new(&problem)
        .config(&GaConfig { population: 12, generations: 8, workers: 6, ..Default::default() })
        .run();
    assert_eq!(serial, parallel);
}
