//! The discrete-event scheduler behind the event-driven engine, the
//! [`Engine`] selection surface, and the cross-engine event-log differ.
//!
//! # Architecture
//!
//! The event-driven engine replaces the cycle-round loop's per-instant
//! O(cores + waiters) rescan with a [`BinaryHeap`] of `(wake_at, seq)`
//! entries. Every activity source re-arms itself as it runs:
//!
//! - **cores** arm a wake at their next `ready_at` whenever they retire an
//!   access or issue a miss (and when a completed transfer un-stalls them);
//! - the **bus transaction** arms a wake at its `ends` instant when it is
//!   granted;
//! - **per-line timer releases** are armed for every line with queued
//!   waiters whenever the bus frees (and re-armed if the release instant
//!   moves);
//! - **TDM slot boundaries** are armed while the bus idles, because the
//!   PENDULUM arbiter can only grant on boundaries;
//! - **scheduled mode switches** and **fault activations** are armed from
//!   their schedules directly.
//!
//! Ties are broken by a monotonically increasing sequence number, so the
//! pop order of simultaneous wakes is deterministic; within one instant the
//! engine additionally dispatches phases in the legacy engine's fixed round
//! order (switches → faults → transaction completion → cores in id order →
//! arbitration), which is what makes the two engines bit-identical rather
//! than merely equivalent.
//!
//! # Determinism and bit-identity
//!
//! All state transitions in the machine are pure functions of `(state,
//! now)` guarded by absolute cycle stamps, so processing a component at an
//! instant where it has nothing due is a no-op. The event engine therefore
//! only needs its wake set to be a *superset* of the legacy engine's
//! visited instants restricted to each component — spurious wakes
//! self-heal. The one observable exception is retryable fault injection
//! (line corruption / spurious eviction retry at every visited instant),
//! which the event engine gates on [`Simulator`]'s "real instant" test so
//! both engines attempt retries at exactly the same cycles. The
//! [`compare_engines`] differ checks the resulting identity event by
//! event, and the `engine_equivalence` property tests sweep it across
//! protocol presets, mode switches and fault plans.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use cohort_trace::Workload;
use cohort_types::{Cycles, LineAddr, Result, TimerValue};

use crate::event::{Event, EventLogProbe};
use crate::fault::FaultPlan;
use crate::probe::SimProbe;
use crate::stats::SimStats;
use crate::{SimBuilder, SimConfig, Simulator};

/// Which driver advances the simulator clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The legacy engine: every visited instant runs a full scheduling
    /// round over all cores and re-derives the next instant by scanning
    /// every wake source. Kept selectable as the bit-identity reference.
    CycleRound,
    /// The discrete-event engine: a binary-heap scheduler of self-re-arming
    /// wake entries dispatches only the components that are due. The
    /// default since the differ proved it bit-identical to the cycle-round
    /// engine.
    #[default]
    EventDriven,
}

impl EngineKind {
    /// A stable identifier for reports and JSON documents.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            EngineKind::CycleRound => "cycle-round",
            EngineKind::EventDriven => "event-driven",
        }
    }
}

/// An engine strategy: a driver that advances a [`Simulator`] to a
/// deadline. Both built-in engines implement it, and
/// [`Simulator::run_until`] dispatches through the kind selected at build
/// time ([`SimBuilder::engine`]).
pub trait Engine {
    /// Which engine this is.
    fn kind(&self) -> EngineKind;

    /// Advances `sim` until `deadline` (exclusive) or completion.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Deadlock`](cohort_types::Error::Deadlock) if the
    /// engine makes no observable progress for the watchdog window.
    fn run_until<P: SimProbe>(&self, sim: &mut Simulator<P>, deadline: Cycles) -> Result<()>;
}

/// The legacy cycle-round strategy (see [`EngineKind::CycleRound`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleRoundEngine;

/// The discrete-event strategy (see [`EngineKind::EventDriven`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct EventDrivenEngine;

impl Engine for CycleRoundEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::CycleRound
    }

    fn run_until<P: SimProbe>(&self, sim: &mut Simulator<P>, deadline: Cycles) -> Result<()> {
        sim.run_until_cycle_rounds(deadline)
    }
}

impl Engine for EventDrivenEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::EventDriven
    }

    fn run_until<P: SimProbe>(&self, sim: &mut Simulator<P>, deadline: Cycles) -> Result<()> {
        sim.run_until_events(deadline)
    }
}

/// What a popped wake entry asks the engine to look at. The entry does not
/// carry payload state: due-ness is always re-checked against the live
/// machine state, so stale wakes (a core whose `ready_at` moved, a release
/// instant that shifted) are no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WakeSource {
    /// A scheduled timer re-programming comes due.
    Switch,
    /// A fault activation instant arrives.
    Fault,
    /// The in-flight bus transaction ends.
    TxnEnd,
    /// A core reaches its `ready_at`.
    Core(usize),
    /// A held line's release instant arrives (head waiter may unblock).
    Release(LineAddr),
    /// A TDM slot boundary while the bus idles.
    Slot,
}

/// One heap entry: wake at `at`, ties broken by insertion sequence.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WakeEntry {
    pub at: u64,
    pub seq: u64,
    pub source: WakeSource,
}

impl PartialEq for WakeEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for WakeEntry {}

impl PartialOrd for WakeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WakeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event-driven engine's scheduler state, carried by the simulator so
/// runs can be sliced with `run_until` and the simulator stays `Clone`.
#[derive(Debug, Clone, Default)]
pub(crate) struct EventSched {
    /// Min-heap of pending wakes.
    heap: BinaryHeap<Reverse<WakeEntry>>,
    /// Tie-breaking insertion sequence.
    seq: u64,
    /// Set once the initial wake set has been armed (first run call).
    pub primed: bool,
    /// Gates the machine-side arming hooks; false under the cycle-round
    /// engine, which derives its schedule by scanning.
    pub arming: bool,
    /// Cores that must be stepped at the *next* dispatched instant even
    /// though their `ready_at` is not in the future (the legacy engine
    /// steps every ready core at every visited instant; a core whose wake
    /// lands at or before "now" is picked up at the next instant, exactly
    /// like the legacy `next_event` ignores non-future `ready_at`s).
    pub carry_cores: u64,
    /// Set by `step_core` when a new broadcast candidate appeared (a miss
    /// was issued): the bus should attempt arbitration at this instant.
    pub flag_arb: bool,
    /// Lines whose release instant must be re-derived at the current
    /// instant (popped release wakes, or a miss on a line with waiters
    /// whose effective timer may have dropped to MSI).
    pub dirty_lines: Vec<LineAddr>,
    /// The last TDM slot boundary armed, to avoid duplicate heap entries
    /// while the bus idles across several dispatches within one slot.
    armed_slot: u64,
    /// The last fault-activation instant armed, deduplicating the
    /// per-dispatch re-arm of the pending-activation chain.
    armed_fault: Option<u64>,
}

impl EventSched {
    /// Pushes a wake at `at` (absolute cycles).
    pub fn arm(&mut self, at: u64, source: WakeSource) {
        self.seq += 1;
        self.heap.push(Reverse(WakeEntry { at, seq: self.seq, source }));
    }

    /// Arms a core wake: future instants go on the heap, instants at or
    /// before `now` are carried to the next dispatch (see `carry_cores`).
    pub fn arm_core(&mut self, now: u64, id: usize, ready_at: u64) {
        if ready_at <= now {
            self.carry_cores |= 1 << id;
        } else {
            self.arm(ready_at, WakeSource::Core(id));
        }
    }

    /// Arms the bus-transaction completion wake. A tenure that ends at or
    /// before `now` (zero-latency configurations) completes at the next
    /// instant, mirroring the legacy round order.
    pub fn arm_txn(&mut self, now: u64, ends: u64) {
        self.arm(ends.max(now + 1), WakeSource::TxnEnd);
    }

    /// Arms a TDM slot-boundary wake, deduplicated per boundary.
    pub fn arm_slot(&mut self, boundary: u64) {
        if self.armed_slot != boundary {
            self.armed_slot = boundary;
            self.arm(boundary, WakeSource::Slot);
        }
    }

    /// Arms a fault-activation wake, deduplicated per instant (the next
    /// pending activation is re-derived after every dispatched instant,
    /// so without the dedup the heap would grow by one entry per
    /// dispatch).
    pub fn arm_fault(&mut self, at: u64) {
        if self.armed_fault != Some(at) {
            self.armed_fault = Some(at);
            self.arm(at, WakeSource::Fault);
        }
    }

    /// The earliest pending wake instant, if any.
    pub fn next_wake_at(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops every wake due at or before `t`, returning the due-core mask
    /// and whether a fault activation or TDM slot boundary was among them.
    /// Release wakes are queued on `dirty_lines` for the release phase.
    pub fn pop_due(&mut self, t: u64) -> (u64, bool, bool) {
        let mut cores = 0u64;
        let mut fault = false;
        let mut slot = false;
        while let Some(Reverse(e)) = self.heap.peek() {
            if e.at > t {
                break;
            }
            let e = self.heap.pop().expect("peeked entry exists").0;
            match e.source {
                WakeSource::Core(id) => cores |= 1 << id,
                WakeSource::Fault => fault = true,
                WakeSource::Slot => slot = true,
                WakeSource::Release(line) => self.dirty_lines.push(line),
                // Switch and transaction due-ness is re-checked against the
                // live schedule/state; the entry only creates the instant.
                WakeSource::Switch | WakeSource::TxnEnd => {}
            }
        }
        (cores, fault, slot)
    }
}

// ----- cross-engine differ ----------------------------------------------

/// The first point at which the two engines' event logs disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineDivergence {
    /// Index into the chronological event logs.
    pub index: usize,
    /// The cycle-round engine's event at that index, if any.
    pub cycle_round: Option<Event>,
    /// The event-driven engine's event at that index, if any.
    pub event_driven: Option<Event>,
}

impl std::fmt::Display for EngineDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "engines diverge at event {}: cycle-round {:?} vs event-driven {:?}",
            self.index, self.cycle_round, self.event_driven
        )
    }
}

/// Compares two chronological event logs, returning the first divergence
/// (including one log being a strict prefix of the other), or `None` if
/// they are identical.
#[must_use]
pub fn diff_event_logs(cycle_round: &[Event], event_driven: &[Event]) -> Option<EngineDivergence> {
    let shared = cycle_round.len().min(event_driven.len());
    for index in 0..shared {
        if cycle_round[index] != event_driven[index] {
            return Some(EngineDivergence {
                index,
                cycle_round: Some(cycle_round[index].clone()),
                event_driven: Some(event_driven[index].clone()),
            });
        }
    }
    if cycle_round.len() != event_driven.len() {
        return Some(EngineDivergence {
            index: shared,
            cycle_round: cycle_round.get(shared).cloned(),
            event_driven: event_driven.get(shared).cloned(),
        });
    }
    None
}

/// The result of running both engines on the same sealed scenario.
#[derive(Debug, Clone)]
pub struct EngineComparison {
    /// First event-log divergence, or `None` when the logs are identical.
    pub divergence: Option<EngineDivergence>,
    /// Whether the final [`SimStats`] are identical.
    pub stats_match: bool,
    /// Whether the injected-fault records are identical.
    pub faults_match: bool,
    /// Number of events each log would be expected to share.
    pub events_compared: usize,
    /// The cycle-round engine's final statistics.
    pub cycle_round_stats: SimStats,
    /// The event-driven engine's final statistics.
    pub event_driven_stats: SimStats,
}

impl EngineComparison {
    /// `true` when logs, statistics and fault records all match
    /// bit-identically.
    #[must_use]
    pub fn is_identical(&self) -> bool {
        self.divergence.is_none() && self.stats_match && self.faults_match
    }

    /// A one-line human-readable verdict.
    #[must_use]
    pub fn describe(&self) -> String {
        if self.is_identical() {
            format!("engines bit-identical over {} events", self.events_compared)
        } else if let Some(d) = &self.divergence {
            d.to_string()
        } else if !self.stats_match {
            format!(
                "event logs match but stats differ: cycle-round {:?} vs event-driven {:?}",
                self.cycle_round_stats, self.event_driven_stats
            )
        } else {
            "event logs and stats match but injected-fault records differ".to_string()
        }
    }
}

/// Runs one scenario — `config` × `workload` × fault `plan` × scheduled
/// timer `switches` — under both engines and compares their event logs,
/// final statistics and injected-fault records bit for bit.
///
/// This is the differ the ROADMAP's engine transition leaned on: the
/// event-driven engine became the default only because this comparison
/// holds across the seeded scenario sweeps in the `engine_equivalence`
/// tests and the `sim` bench's preset matrix.
///
/// # Errors
///
/// Returns an error if either simulator cannot be built or a run deadlocks.
pub fn compare_engines(
    config: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    switches: &[(Cycles, Vec<TimerValue>)],
) -> Result<EngineComparison> {
    let run = |kind: EngineKind| -> Result<(Vec<Event>, SimStats, Vec<crate::InjectedFault>)> {
        let mut sim = SimBuilder::new(config.clone(), workload)
            .probe(EventLogProbe::new())
            .faults(plan.clone())
            .engine(kind)
            .build()?;
        for (at, timers) in switches {
            sim.schedule_timer_switch(*at, timers.clone())?;
        }
        let stats = sim.run()?;
        let injected = sim.injected_faults().to_vec();
        Ok((sim.into_probe().into_events(), stats, injected))
    };
    let (legacy_log, legacy_stats, legacy_faults) = run(EngineKind::CycleRound)?;
    let (event_log, event_stats, event_faults) = run(EngineKind::EventDriven)?;
    let events_compared = legacy_log.len().max(event_log.len());
    Ok(EngineComparison {
        divergence: diff_event_logs(&legacy_log, &event_log),
        stats_match: legacy_stats == event_stats,
        faults_match: legacy_faults == event_faults,
        events_compared,
        cycle_round_stats: legacy_stats,
        event_driven_stats: event_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(cycle: u64, core: usize) -> Event {
        Event { cycle: Cycles::new(cycle), kind: EventKind::Hit { core, line: LineAddr::new(1) } }
    }

    #[test]
    fn identical_logs_do_not_diverge() {
        let a = vec![ev(1, 0), ev(2, 1)];
        assert_eq!(diff_event_logs(&a, &a.clone()), None);
    }

    #[test]
    fn first_mismatch_is_reported() {
        let a = vec![ev(1, 0), ev(2, 1)];
        let b = vec![ev(1, 0), ev(2, 0)];
        let d = diff_event_logs(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.cycle_round, Some(ev(2, 1)));
        assert_eq!(d.event_driven, Some(ev(2, 0)));
    }

    #[test]
    fn prefix_logs_diverge_at_the_tail() {
        let a = vec![ev(1, 0), ev(2, 1)];
        let b = vec![ev(1, 0)];
        let d = diff_event_logs(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.cycle_round, Some(ev(2, 1)));
        assert_eq!(d.event_driven, None);
    }

    #[test]
    fn wake_entries_order_by_instant_then_sequence() {
        let mut sched = EventSched::default();
        sched.arm(10, WakeSource::TxnEnd);
        sched.arm(5, WakeSource::Switch);
        sched.arm(10, WakeSource::Core(3));
        assert_eq!(sched.next_wake_at(), Some(5));
        let (cores, fault, slot) = sched.pop_due(10);
        assert_eq!(cores, 1 << 3);
        assert!(!fault && !slot);
        assert_eq!(sched.next_wake_at(), None);
    }

    #[test]
    fn core_wakes_at_or_before_now_are_carried() {
        let mut sched = EventSched::default();
        sched.arm_core(7, 2, 7);
        sched.arm_core(7, 1, 9);
        assert_eq!(sched.carry_cores, 1 << 2);
        assert_eq!(sched.next_wake_at(), Some(9));
    }

    #[test]
    fn slot_arming_deduplicates_per_boundary() {
        let mut sched = EventSched::default();
        sched.arm_slot(54);
        sched.arm_slot(54);
        sched.arm_slot(108);
        assert_eq!(sched.heap.len(), 2);
    }
}
