//! The cycle-accurate simulation engine.
//!
//! The engine advances a global clock over five kinds of activity:
//!
//! 1. **cores** replay their traces, hitting in their private caches or
//!    allocating MSHR entries for misses (hits-over-misses);
//! 2. **broadcasts** put coherence requests on the shared bus (occupying it
//!    for the request latency) and enqueue the requester in the line's
//!    global waiter queue;
//! 3. **timers** gate when a holder releases a line ([`release_time`]):
//!    immediately for θ = −1 (MSI) cores, at the next countdown expiry for
//!    timed cores;
//! 4. **data transfers** move the line from the releasing owner (or the
//!    shared memory) to the head waiter, occupying the bus for the data
//!    latency (doubled when the data path stages through the shared
//!    memory);
//! 5. the **arbiter** picks which core uses the bus whenever it is free.
//!
//! The clock skips to the next interesting instant (core ready, transfer
//! end, timer release, TDM slot boundary, scheduled mode switch), which is
//! observationally identical to stepping every cycle because all state
//! changes are computed from absolute cycle stamps.
//!
//! Two drivers can advance that clock (see [`EngineKind`] and the
//! [`crate::sched`] module docs): the default discrete-event engine
//! dispatches only the components whose wake entries are due, while the
//! legacy cycle-round engine re-runs the full round at every visited
//! instant. Both produce bit-identical event streams and statistics;
//! select one with [`SimBuilder::engine`].

use std::collections::{BTreeMap, BTreeSet};

use cohort_trace::Workload;
use cohort_types::{Cycles, Error, LineAddr, Result, TimerValue};

use crate::arbiter::{Arbiter, Candidate, CandidateKind};
use crate::cache::{L1Line, LineState, SetAssocCache};
use crate::coherence::{CoherenceMap, Owner, ReqKind, Waiter};
use crate::core_model::{CoreModel, MshrEntry};
use crate::event::{EventKind, InvalidateCause};
use crate::fault::{FaultKind, FaultPlan, FaultState, InjectedFault};
use crate::probe::{BusTenure, NoProbe, SimProbe, TenureKind};
use crate::sched::{EngineKind, EventSched, WakeSource};
use crate::timer::release_time;
use crate::{CoreStats, DataPath, LlcModel, ProtocolFlavor, SimConfig, SimStats};

/// Outcome of evaluating one trace operation against the private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Serviced by the private cache.
    Hit,
    /// Needs a bus request.
    Miss { kind: ReqKind, upgrade: bool },
    /// A miss for the same line is already in flight: wait for it.
    WaitInflight,
}

/// An in-flight bus transaction.
#[derive(Debug, Clone, Copy)]
struct ActiveTxn {
    core: usize,
    line: LineAddr,
    ends: Cycles,
    kind: TxnKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnKind {
    /// Request broadcast without an immediate data response.
    BroadcastOnly,
    /// Data transfer to `core` (possibly fused with its broadcast).
    Transfer { from: Owner },
}

/// The cycle-accurate simulator, generic over one [`SimProbe`].
///
/// The default probe is [`NoProbe`], which observes nothing and costs
/// nothing — [`Simulator::new`] builds that uninstrumented engine. To
/// observe a run, pass a probe (or a tuple of probes) to
/// [`Simulator::with_probe`]; the probe receives every protocol event,
/// bus tenure and arbitration decision as the run streams past.
///
/// # Examples
///
/// ```
/// use cohort_sim::{SimConfig, Simulator};
/// use cohort_trace::micro;
/// use cohort_types::TimerValue;
///
/// // Two MSI cores ping-pong one line.
/// let config = SimConfig::builder(2).build()?;
/// let workload = micro::ping_pong(2, 4);
/// let mut sim = Simulator::new(config, &workload)?;
/// let stats = sim.run()?;
/// assert_eq!(stats.cores[0].accesses(), 4);
/// assert!(stats.execution_time().get() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Observing the same run with a probe stack:
///
/// ```
/// use cohort_sim::{EventLogProbe, MetricsProbe, SimConfig, Simulator};
/// use cohort_trace::micro;
///
/// let config = SimConfig::builder(2).build()?;
/// let probes = (MetricsProbe::new(), EventLogProbe::new());
/// let mut sim = Simulator::with_probe(config, &micro::ping_pong(2, 4), probes)?;
/// sim.run()?;
/// let (metrics, log) = sim.into_probe();
/// assert_eq!(metrics.report().cores.len(), 2);
/// assert!(!log.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<P: SimProbe = NoProbe> {
    config: SimConfig,
    timers: Vec<TimerValue>,
    now: Cycles,
    cores: Vec<CoreModel>,
    l1s: Vec<SetAssocCache<L1Line>>,
    coh: CoherenceMap,
    llc: Option<SetAssocCache<()>>,
    arbiter: Arbiter,
    txn: Option<ActiveTxn>,
    stats: SimStats,
    probe: P,
    finish_notified: bool,
    switches: BTreeMap<u64, Vec<TimerValue>>,
    lines_with_waiters: BTreeSet<LineAddr>,
    last_progress: Cycles,
    faults: FaultState,
    engine: EngineKind,
    sched: EventSched,
    cand_buf: Vec<Option<Candidate>>,
}

/// Cycles without observable progress after which [`Simulator::run`]
/// reports a deadlock instead of spinning (a defensive bound well above any
/// legal stall: max θ is 65 535 and slots are tens of cycles).
const WATCHDOG: u64 = 2_000_000;

/// Builder for [`Simulator`] — the driver-facing construction surface.
///
/// Collects the configuration, workload, probe, fault plan and engine
/// selection, then [`SimBuilder::build`]s the simulator:
///
/// ```
/// use cohort_sim::{EngineKind, FaultPlan, MetricsProbe, SimBuilder, SimConfig};
/// use cohort_trace::micro;
///
/// let config = SimConfig::builder(2).build()?;
/// let workload = micro::ping_pong(2, 4);
/// let mut sim = SimBuilder::new(config, &workload)
///     .probe(MetricsProbe::new())
///     .faults(FaultPlan::empty())
///     .engine(EngineKind::EventDriven)
///     .build()?;
/// sim.run()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SimBuilder<'w, P: SimProbe = NoProbe> {
    config: SimConfig,
    workload: &'w Workload,
    probe: P,
    faults: FaultPlan,
    engine: EngineKind,
}

impl<'w> SimBuilder<'w, NoProbe> {
    /// Starts a builder for `workload` under `config`, with no probe, no
    /// faults and the default (event-driven) engine.
    #[must_use]
    pub fn new(config: SimConfig, workload: &'w Workload) -> Self {
        SimBuilder {
            config,
            workload,
            probe: NoProbe,
            faults: FaultPlan::empty(),
            engine: EngineKind::default(),
        }
    }
}

impl<'w, P: SimProbe> SimBuilder<'w, P> {
    /// Attaches a probe (by value, or `&mut probe` to keep ownership at the
    /// call site), replacing any previously attached one.
    #[must_use]
    pub fn probe<Q: SimProbe>(self, probe: Q) -> SimBuilder<'w, Q> {
        SimBuilder {
            config: self.config,
            workload: self.workload,
            probe,
            faults: self.faults,
            engine: self.engine,
        }
    }

    /// Injects `plan`'s faults during the run. The empty plan is the
    /// bit-identity baseline.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Selects the engine that advances the clock (default:
    /// [`EngineKind::EventDriven`]).
    #[must_use]
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Builds the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the workload's core count does
    /// not match the configuration or the fault plan targets an
    /// out-of-range core.
    pub fn build(self) -> Result<Simulator<P>> {
        Simulator::build_inner(self.config, self.workload, self.probe, self.faults, self.engine)
    }
}

impl Simulator {
    /// Creates an uninstrumented simulator for `workload` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the workload's core count does
    /// not match the configuration.
    pub fn new(config: SimConfig, workload: &Workload) -> Result<Self> {
        Simulator::with_probe(config, workload, NoProbe)
    }
}

impl<P: SimProbe> Simulator<P> {
    /// Creates a simulator whose run streams through `probe`.
    ///
    /// Pass the probe by value to have the simulator own it (retrieve it
    /// with [`Simulator::into_probe`]), or pass `&mut probe` to keep
    /// ownership at the call site.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the workload's core count does
    /// not match the configuration.
    pub fn with_probe(config: SimConfig, workload: &Workload, probe: P) -> Result<Self> {
        Simulator::with_probe_and_faults(config, workload, probe, FaultPlan::empty())
    }

    /// Creates an instrumented simulator that injects `plan`'s faults.
    ///
    /// An empty plan is the bit-identity baseline: the simulator behaves
    /// exactly as if built with [`Simulator::with_probe`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the workload's core count does
    /// not match the configuration or the plan targets an out-of-range
    /// core.
    pub fn with_probe_and_faults(
        config: SimConfig,
        workload: &Workload,
        probe: P,
        plan: FaultPlan,
    ) -> Result<Self> {
        Simulator::build_inner(config, workload, probe, plan, EngineKind::default())
    }

    fn build_inner(
        config: SimConfig,
        workload: &Workload,
        mut probe: P,
        plan: FaultPlan,
        engine: EngineKind,
    ) -> Result<Self> {
        if let Some(bad) = plan.specs().iter().find(|s| s.core >= config.cores()) {
            return Err(Error::InvalidConfig(format!(
                "fault plan targets core {} but the configuration has {} cores",
                bad.core,
                config.cores()
            )));
        }
        if workload.cores() != config.cores() {
            return Err(Error::InvalidConfig(format!(
                "workload has {} cores but the configuration expects {}",
                workload.cores(),
                config.cores()
            )));
        }
        let cores = workload
            .traces()
            .iter()
            .map(|t| CoreModel::new(t.ops().to_vec(), config.mshr_per_core()))
            .collect();
        let l1s = (0..config.cores()).map(|_| SetAssocCache::new(*config.l1())).collect();
        let llc = match config.llc() {
            LlcModel::Perfect => None,
            LlcModel::Finite(geom) => Some(SetAssocCache::new(*geom)),
        };
        // TDM slots must fit a worst-case transaction, which with a finite
        // LLC includes the memory latency — the same effective slot width
        // the analysis uses.
        let slot = config.latency().slot_width() + config.latency().memory;
        let arbiter = Arbiter::new(config.arbiter(), config.cores(), slot);
        let stats =
            SimStats { cores: vec![CoreStats::default(); config.cores()], ..Default::default() };
        if P::ACTIVE {
            probe.on_start(&config);
        }
        Ok(Simulator {
            timers: config.timers().to_vec(),
            cores,
            l1s,
            coh: CoherenceMap::new(),
            llc,
            arbiter,
            txn: None,
            stats,
            probe,
            finish_notified: false,
            switches: BTreeMap::new(),
            lines_with_waiters: BTreeSet::new(),
            last_progress: Cycles::ZERO,
            now: Cycles::ZERO,
            faults: FaultState::new(plan),
            engine,
            sched: EventSched::default(),
            cand_buf: Vec::new(),
            config,
        })
    }

    /// The engine kind selected at build time.
    #[must_use]
    pub fn engine_kind(&self) -> EngineKind {
        self.engine
    }

    /// The fault plan the simulator was built with (empty by default).
    #[must_use]
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// The faults the engine has applied so far, in injection order.
    #[must_use]
    pub fn injected_faults(&self) -> &[InjectedFault] {
        self.faults.injected()
    }

    /// The current cycle.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// The configuration the simulator was built with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The currently programmed timer registers (they may differ from the
    /// configuration after a mode switch).
    #[must_use]
    pub fn timers(&self) -> &[TimerValue] {
        &self.timers
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The attached probe.
    #[must_use]
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The attached probe, mutably.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the simulator, returning the probe (e.g. to read an
    /// [`EventLogProbe`](crate::EventLogProbe)'s collected events).
    #[must_use]
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Returns `true` once every core drained its trace and the bus idles.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.txn.is_none() && self.cores.iter().all(CoreModel::is_done)
    }

    // ----- state inspection (verification harnesses) -----------------------

    /// The live bus-visible coherence bookkeeping: owners, sharers and
    /// waiter queues per line. Exposed read-only so external harnesses
    /// (the `cohort-verif` replay driver, invariant tests) can deep-check
    /// the engine state between [`Simulator::run_until`] steps.
    #[must_use]
    pub fn coherence(&self) -> &CoherenceMap {
        &self.coh
    }

    /// The private cache of `core`, including per-line coherence state and
    /// timer anchors.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1(&self, core: usize) -> &SetAssocCache<L1Line> {
        &self.l1s[core]
    }

    /// Schedules a re-programming of all timer registers at `at` — the
    /// hardware mode-switch mechanism of §VI (each core's Mode-Switch LUT
    /// entry is written into its θ register).
    ///
    /// Semantics follow the Figure-3 circuit: a running per-line countdown
    /// keeps the θ it loaded at fill time (a register write does not reload
    /// counters), except that writing −1 pulls Enable low and releases held
    /// lines immediately. Lines filled after the switch load the new value.
    /// Consequently the new mode's Eq. 1 bound applies to requests issued
    /// after in-flight windows drain — at most one old-θ window per held
    /// line, the standard mode-change transient.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the vector length mismatches the
    /// core count or `at` is in the past.
    pub fn schedule_timer_switch(&mut self, at: Cycles, timers: Vec<TimerValue>) -> Result<()> {
        if timers.len() != self.config.cores() {
            return Err(Error::InvalidConfig(format!(
                "expected {} timers, got {}",
                self.config.cores(),
                timers.len()
            )));
        }
        if at < self.now {
            return Err(Error::InvalidConfig(format!(
                "cannot schedule a switch at {at} before the current cycle {}",
                self.now
            )));
        }
        if self.switches.contains_key(&at.get()) {
            return Err(Error::InvalidConfig(format!(
                "a timer switch is already scheduled at cycle {at}"
            )));
        }
        self.switches.insert(at.get(), timers);
        if self.sched.arming {
            self.sched.arm(at.get(), WakeSource::Switch);
        }
        Ok(())
    }

    /// Runs the simulation to completion and returns the statistics.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Deadlock`] if the engine detects no progress for a
    /// defensive number of cycles — this indicates an engine bug or a
    /// pathological configuration, never a legal run.
    pub fn run(&mut self) -> Result<SimStats> {
        self.run_until(Cycles::new(u64::MAX))?;
        Ok(self.stats.clone())
    }

    /// Runs until `deadline` (exclusive) or completion, whichever is
    /// first, under the engine selected at build time.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_until(&mut self, deadline: Cycles) -> Result<()> {
        match self.engine {
            EngineKind::CycleRound => self.run_until_cycle_rounds(deadline),
            EngineKind::EventDriven => self.run_until_events(deadline),
        }
    }

    /// The legacy driver: a full scheduling round over every component at
    /// every visited instant, with the next instant re-derived by scanning
    /// ([`Simulator::next_event`]).
    pub(crate) fn run_until_cycle_rounds(&mut self, deadline: Cycles) -> Result<()> {
        while !self.is_finished() && self.now < deadline {
            self.step();
            if self.is_finished() {
                break;
            }
            if self.now.get().saturating_sub(self.last_progress.get()) > WATCHDOG {
                return Err(Error::Deadlock { cycle: self.now.get() });
            }
            let next = self.next_event(deadline);
            self.now = next.max(Cycles::new(self.now.get() + 1)).min(deadline);
        }
        self.finish_run(deadline);
        Ok(())
    }

    /// The discrete-event driver: simulated time jumps straight to the
    /// earliest pending wake entry and only the due components dispatch
    /// (see the [`crate::sched`] module docs for the wake-source
    /// enumeration and the bit-identity argument).
    pub(crate) fn run_until_events(&mut self, deadline: Cycles) -> Result<()> {
        if !self.sched.primed {
            self.prime_sched();
        }
        // The first dispatch of every `run_until` call re-visits the
        // current instant unconditionally, exactly like the legacy loop
        // unconditionally steps on entry (a re-visited instant is a no-op
        // for every already-processed component).
        let mut entry = true;
        while !self.is_finished() && self.now < deadline {
            self.dispatch_instant(entry);
            entry = false;
            if self.is_finished() {
                break;
            }
            if self.now.get().saturating_sub(self.last_progress.get()) > WATCHDOG {
                return Err(Error::Deadlock { cycle: self.now.get() });
            }
            let Some(next) = self.sched.next_wake_at() else {
                // No wake source left: the legacy scan would find nothing
                // and jump to the deadline.
                self.now = deadline;
                break;
            };
            if next >= deadline.get() {
                self.now = deadline;
                break;
            }
            self.now = Cycles::new(next.max(self.now.get() + 1)).min(deadline);
        }
        self.finish_run(deadline);
        Ok(())
    }

    /// Arms the initial wake set from the pristine machine state: every
    /// core's first `ready_at`, every scheduled switch, and the earliest
    /// fault activation. Everything else (transactions, releases, TDM
    /// boundaries) is armed by the phases as state comes alive.
    fn prime_sched(&mut self) {
        self.sched.primed = true;
        self.sched.arming = true;
        let now = self.now.get();
        for id in 0..self.cores.len() {
            let ready = self.cores[id].ready_at.get();
            self.sched.arm_core(now, id, ready);
        }
        for &at in self.switches.keys() {
            self.sched.arm(at, WakeSource::Switch);
        }
        if let Some(at) = self.faults.next_activation() {
            self.sched.arm_fault(at.get());
        }
    }

    /// Dispatches the current instant: pops the due wake entries and runs
    /// the affected components in the legacy round order (switches →
    /// faults → transaction completion → cores in id order → releases and
    /// arbitration).
    fn dispatch_instant(&mut self, entry: bool) {
        let t = self.now;
        // Whether a due step fault may attempt injection at this instant is
        // decided against the pre-dispatch state — the same state the
        // legacy scan used when it chose to visit (or skip) this instant.
        // The legacy loop attempts due faults at every instant it visits,
        // so attempts must happen exactly at the legacy-visited instants.
        let fault_attempt_here = !self.faults.is_empty()
            && self.faults.has_due_step_fault(t)
            && (entry || self.is_real_instant(t));
        let (mut due_cores, _due_fault, due_slot) = self.sched.pop_due(t.get());
        due_cores |= std::mem::take(&mut self.sched.carry_cores);
        let mut arb = false;
        let mut recompute_releases = false;

        // 1. Scheduled timer switches.
        if self.switches.first_key_value().is_some_and(|(&at, _)| at <= t.get()) {
            self.apply_switches();
            recompute_releases = true;
            arb = true;
        }

        // 2. Step faults. A new activation instant is real via the armed
        // Fault wake (`next_activation() == t` makes `is_real_instant`
        // true); failed attempts retry at every later real instant until
        // they land, exactly like the legacy loop.
        if fault_attempt_here {
            let fired = self.apply_faults();
            if fired > 0 {
                recompute_releases = true;
                arb = true;
            }
        }

        // 3. Bus-transaction completion (un-stalled cores join this
        // instant's core phase via the carry mask).
        if self.txn.is_some_and(|txn| txn.ends <= t) {
            self.complete_txn_if_due();
            recompute_releases = true;
            arb = true;
        }
        due_cores |= std::mem::take(&mut self.sched.carry_cores);

        // 4. Cores, ascending id — the legacy `step_cores` order.
        let mut mask = due_cores;
        while mask != 0 {
            let id = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            self.step_core(id);
        }
        arb |= std::mem::take(&mut self.sched.flag_arb);

        // 5. Release re-arming and arbitration, only while the bus idles
        // (the legacy scan likewise ignores releases mid-tenure; the
        // completion that frees the bus re-derives every waiting line).
        if self.txn.is_none() {
            if recompute_releases {
                self.sched.dirty_lines.clear();
                let lines: Vec<LineAddr> = self.lines_with_waiters.iter().copied().collect();
                for line in lines {
                    arb |= self.rearm_release(line, t);
                }
            } else if !self.sched.dirty_lines.is_empty() {
                let lines = std::mem::take(&mut self.sched.dirty_lines);
                for line in &lines {
                    arb |= self.rearm_release(*line, t);
                }
                self.sched.dirty_lines = lines;
                self.sched.dirty_lines.clear();
            }
            if arb || due_slot {
                self.try_start_txn();
            }
        } else {
            self.sched.dirty_lines.clear();
        }

        // 6. While the bus idles under TDM, the next slot boundary is a
        // grant opportunity (and a visited instant) regardless of whether
        // any candidate exists — mirroring the legacy scan.
        if self.txn.is_none() {
            let opportunity = self.arbiter.next_grant_opportunity(t);
            if opportunity > t {
                self.sched.arm_slot(opportunity.get());
            }
        }

        // 7. Keep the fault-activation chain armed: a firing anywhere in
        // this instant (step faults above, bus faults at grant time inside
        // `try_start_txn`) advances the next pending activation.
        if !self.faults.is_empty() {
            if let Some(at) = self.faults.next_activation() {
                if at > t {
                    self.sched.arm_fault(at.get());
                }
            }
        }
    }

    /// Re-derives the head-release instant of `line` and re-arms its wake.
    /// Returns `true` when the release has already passed — the head waiter
    /// may have become a ready receive candidate, so arbitration should be
    /// attempted at this instant.
    fn rearm_release(&mut self, line: LineAddr, t: Cycles) -> bool {
        if !self.lines_with_waiters.contains(&line) {
            return false;
        }
        match self.head_release_instant(line) {
            None => false,
            Some(release) if release <= t => true,
            Some(release) => {
                self.sched.arm(release.get(), WakeSource::Release(line));
                false
            }
        }
    }

    /// Whether the legacy engine would visit instant `t` given the current
    /// (pre-dispatch) state — i.e. whether some wake source is genuinely
    /// due rather than stale. Only consulted while a retryable fault is
    /// pending, because fault retries are the one activity whose effects
    /// depend on the visited-instant set itself.
    fn is_real_instant(&self, t: Cycles) -> bool {
        if self.txn.is_some_and(|txn| txn.ends == t) {
            return true;
        }
        if self.switches.first_key_value().is_some_and(|(&at, _)| at == t.get()) {
            return true;
        }
        if self.faults.next_activation() == Some(t) {
            return true;
        }
        if self.cores.iter().any(|c| c.finish.is_none() && !c.stalled && c.ready_at == t) {
            return true;
        }
        if self.txn.is_none() {
            // A TDM slot boundary is a visited instant while the bus idles.
            let tdm = self.arbiter.next_grant_opportunity(t) > t;
            if tdm
                && (t.get() == 0
                    || self.arbiter.next_grant_opportunity(Cycles::new(t.get() - 1)) == t)
            {
                return true;
            }
            for &line in &self.lines_with_waiters {
                if self.head_release_instant(line) == Some(t) {
                    return true;
                }
            }
        }
        false
    }

    /// Shared run epilogue: clamp the cycle count and notify the probe
    /// once the run finishes.
    fn finish_run(&mut self, deadline: Cycles) {
        self.stats.cycles =
            self.stats.cycles.max(self.now.min(deadline)).max(self.stats.execution_time());
        if self.is_finished() && !self.finish_notified {
            self.finish_notified = true;
            if P::ACTIVE {
                self.probe.on_finish(&self.stats);
            }
        }
    }

    /// One scheduling round at the current cycle.
    fn step(&mut self) {
        self.apply_switches();
        if !self.faults.is_empty() {
            let _ = self.apply_faults();
        }
        self.complete_txn_if_due();
        self.step_cores();
        self.try_start_txn();
    }

    // ----- fault injection -------------------------------------------------

    /// Applies every armed step fault (timer, cache and core faults; bus
    /// faults fire at grant time in [`Simulator::try_start_txn`]). Faults
    /// that find no applicable target this step stay armed and retry.
    /// Returns the number that fired, for the event engine's re-arming.
    fn apply_faults(&mut self) -> usize {
        let mut fired_count = 0;
        for (index, spec) in self.faults.due_step_faults(self.now) {
            let fired = match spec.kind {
                // Window faults act purely through `holder_release`; firing
                // here just records the window opening for the report.
                FaultKind::TimerStuck { .. } | FaultKind::TimerEarlyExpiry { .. } => true,
                FaultKind::TimerCorruption { value } => {
                    // A silent register bit-flip: no TimerSwitch event, so
                    // probes have no way to see the new θ coming.
                    self.timers[spec.core] = value;
                    true
                }
                FaultKind::CoreStall { cycles } => {
                    let core = &mut self.cores[spec.core];
                    core.ready_at = core.ready_at.max(self.now + Cycles::new(cycles));
                    let ready = core.ready_at.get();
                    if self.sched.arming {
                        self.sched.arm_core(self.now.get(), spec.core, ready);
                    }
                    true
                }
                FaultKind::LineCorruption => self.corrupt_line(spec.core),
                FaultKind::SpuriousEviction => self.spurious_evict(spec.core),
                FaultKind::BusDrop | FaultKind::BusDuplicate | FaultKind::BusDelay { .. } => {
                    unreachable!("bus faults are not step faults")
                }
            };
            if fired {
                self.faults.mark_fired(index, self.now);
                fired_count += 1;
            }
        }
        fired_count
    }

    /// Flips the first quiescent Shared line in `core`'s L1 to Modified
    /// without a bus transaction. The corrupted controller believes it
    /// observed a write-granting fill, and the event stream records that
    /// belief — which is exactly what lets an event-shadowing probe convict
    /// the state of an SWMR violation.
    fn corrupt_line(&mut self, core: usize) -> bool {
        let active = self.txn.map(|t| t.line);
        let mut target = None;
        for (line, payload) in self.l1s[core].iter() {
            if payload.state == LineState::Shared
                && Some(line) != active
                && !self.cores[core].has_inflight(line)
            {
                target = Some(line);
                break;
            }
        }
        let Some(line) = target else { return false };
        if let Some(l1line) = self.l1s[core].peek_mut(line) {
            l1line.state = LineState::Modified;
        }
        if P::ACTIVE {
            self.probe.on_event(
                self.now,
                &EventKind::Fill { core, line, kind: ReqKind::GetM, latency: Cycles::ZERO },
            );
        }
        true
    }

    /// Silently drops a quiescent resident line (preferring an owned one)
    /// from `core`'s L1. The global bookkeeping is updated — the directory
    /// saw the writeback wire — but no event is emitted, so event-shadowing
    /// probes keep believing the copy exists.
    fn spurious_evict(&mut self, core: usize) -> bool {
        let active = self.txn.map(|t| t.line);
        let mut chosen = None;
        for (line, payload) in self.l1s[core].iter() {
            if Some(line) == active || self.cores[core].has_inflight(line) {
                continue;
            }
            if payload.state.is_owned() {
                chosen = Some((line, *payload));
                break;
            }
            if chosen.is_none() {
                chosen = Some((line, *payload));
            }
        }
        let Some((line, payload)) = chosen else { return false };
        self.l1s[core].remove(line);
        let entry = self.coh.entry(line);
        if payload.state.is_owned() && entry.owner() == Owner::Core(core) {
            entry.set_owner(Owner::Llc);
        } else {
            entry.remove_sharer(core);
        }
        self.coh.gc(line);
        true
    }

    fn apply_switches(&mut self) {
        while let Some((&at, _)) = self.switches.first_key_value() {
            if at > self.now.get() {
                break;
            }
            // Latch every release that already happened under the outgoing
            // θ values: the hardware counter expired and committed to the
            // hand-over, so the new registers must not re-protect the line
            // (nor may they be cheated out of an expiry that passed).
            self.latch_expired_releases();
            let (_, timers) = self.switches.pop_first().expect("checked non-empty");
            if P::ACTIVE {
                self.probe.on_event(self.now, &EventKind::TimerSwitch { timers: timers.clone() });
            }
            self.timers = timers;
            self.last_progress = self.now;
        }
    }

    fn latch_expired_releases(&mut self) {
        let lines: Vec<LineAddr> = self.lines_with_waiters.iter().copied().collect();
        for line in lines {
            let Some(coh) = self.coh.get(line) else { continue };
            let Some(head) = coh.head().copied() else { continue };
            let holders: Vec<usize> =
                coh.holders().filter(|&h| h != head.core && coh.head_dispossesses(h)).collect();
            for holder in holders {
                let Some(entry) = self.l1s[holder].peek(line).copied() else { continue };
                if entry.released {
                    continue;
                }
                if self.holder_release(holder, line, &entry, head.enqueued) <= self.now {
                    if let Some(l1line) = self.l1s[holder].peek_mut(line) {
                        l1line.released = true;
                    }
                }
            }
        }
    }

    // ----- core side ------------------------------------------------------

    fn step_cores(&mut self) {
        for core in 0..self.cores.len() {
            self.step_core(core);
        }
    }

    fn step_core(&mut self, id: usize) {
        let hit_latency = self.config.latency().hit;
        let core = &self.cores[id];
        if core.finish.is_some() || core.stalled || core.ready_at > self.now {
            return;
        }
        let Some(op) = core.current_op().copied() else {
            // Trace drained; wait for outstanding misses to finish.
            return;
        };
        match self.classify(id, op.line, op.kind.is_store()) {
            Outcome::Hit => {
                let completion = self.now + hit_latency;
                let core = &mut self.cores[id];
                core.cursor += 1;
                core.last_completion = completion;
                let next_gap = core.current_op().map_or(Cycles::ZERO, |o| o.gap);
                core.ready_at = completion + next_gap;
                let ready = core.ready_at.get();
                if self.sched.arming {
                    self.sched.arm_core(self.now.get(), id, ready);
                }
                let stats = &mut self.stats.cores[id];
                stats.hits += 1;
                stats.total_latency += hit_latency;
                if let Some(l1line) = self.l1s[id].touch(op.line) {
                    // MESI: the first store to an Exclusive line upgrades
                    // silently — write permission without a bus transaction.
                    if op.kind.is_store() && l1line.state == LineState::Exclusive {
                        l1line.state = LineState::Modified;
                    }
                }
                if P::ACTIVE {
                    self.probe.on_event(self.now, &EventKind::Hit { core: id, line: op.line });
                }
                self.mark_done_if_drained(id);
                self.last_progress = self.now;
            }
            Outcome::Miss { kind, upgrade } => {
                let core = &mut self.cores[id];
                if core.mshr.len() >= core.mshr_capacity {
                    core.stalled = true;
                    return;
                }
                core.allocate(MshrEntry {
                    line: op.line,
                    kind,
                    issued: self.now,
                    broadcast: false,
                    upgrade,
                });
                core.cursor += 1;
                // Issuing the miss occupies the core for one cycle; it then
                // continues with subsequent accesses (hits-over-misses).
                let next_gap = core.current_op().map_or(Cycles::ZERO, |o| o.gap);
                core.ready_at = self.now + Cycles::new(1) + next_gap;
                let ready = core.ready_at.get();
                if self.sched.arming {
                    self.sched.arm_core(self.now.get(), id, ready);
                    // A fresh request may start a transaction, and adding a
                    // waiter to a held line can pull its release earlier
                    // (the effective timer drops to the MSI floor for
                    // same-level requests); flag both re-checks.
                    self.sched.flag_arb = true;
                    if self.lines_with_waiters.contains(&op.line) {
                        self.sched.dirty_lines.push(op.line);
                    }
                }
                if P::ACTIVE {
                    self.probe.on_event(
                        self.now,
                        &EventKind::MissIssued { core: id, line: op.line, kind },
                    );
                }
                self.last_progress = self.now;
            }
            Outcome::WaitInflight => {
                self.cores[id].stalled = true;
            }
        }
    }

    /// Classifies an access against the private cache, honouring the
    /// *effective* coherence state: a line whose release instant has passed
    /// (head waiter pending, timer expired) no longer yields hits even if
    /// the physical hand-over has not happened yet.
    fn classify(&self, id: usize, line: LineAddr, is_store: bool) -> Outcome {
        if self.cores[id].has_inflight(line) {
            return Outcome::WaitInflight;
        }
        let Some(l1line) = self.l1s[id].peek(line) else {
            let kind = if is_store { ReqKind::GetM } else { ReqKind::GetS };
            return Outcome::Miss { kind, upgrade: false };
        };
        let mut state = l1line.state;
        if let Some(coh) = self.coh.get(line) {
            if let Some(head) = coh.head() {
                if head.core != id && coh.head_dispossesses(id) {
                    let released = self.holder_release(id, line, l1line, head.enqueued);
                    if self.now >= released {
                        match head.kind {
                            // The line has logically left this cache.
                            ReqKind::GetM => {
                                let kind = if is_store { ReqKind::GetM } else { ReqKind::GetS };
                                return Outcome::Miss { kind, upgrade: false };
                            }
                            // The owner has logically downgraded to Shared.
                            ReqKind::GetS => state = LineState::Shared,
                        }
                    }
                }
            }
        }
        if is_store && !state.is_writable() {
            return Outcome::Miss { kind: ReqKind::GetM, upgrade: true };
        }
        Outcome::Hit
    }

    fn mark_done_if_drained(&mut self, id: usize) {
        let core = &mut self.cores[id];
        if core.finish.is_none() && core.is_done() {
            core.finish = Some(core.last_completion);
            self.stats.cores[id].finish = core.last_completion;
        }
    }

    // ----- bus side -------------------------------------------------------

    /// Builds one core's arbitration candidate at the current cycle.
    fn candidate(&self, id: usize) -> Option<Candidate> {
        let core = &self.cores[id];
        // A ready data response for any broadcast request (oldest first).
        for m in core.mshr.iter().filter(|m| m.broadcast) {
            let Some(coh) = self.coh.get(m.line) else { continue };
            if coh.is_head(id) && self.holders_released(m.line, self.now) {
                return Some(Candidate {
                    kind: CandidateKind::Receive,
                    issued: m.issued,
                    line: m.line,
                });
            }
        }
        // Otherwise broadcast the oldest request that has not hit the bus.
        core.oldest_unbroadcast().map(|m| Candidate {
            kind: CandidateKind::Broadcast,
            issued: m.issued,
            line: m.line,
        })
    }

    /// The timer governing a holder's countdown for `line`: the per-line
    /// loaded θ, overridden to immediate release when the live register is
    /// −1 (Enable low) or the holder itself waits on the line (a core
    /// stalled on its own request cannot hit the line, so the controller
    /// drops the protection — this is what keeps a core's own timer out of
    /// its own Eq. 1 bound, the `j ≠ i` exclusion).
    fn effective_timer(&self, holder: usize, line: LineAddr, l1line: &L1Line) -> TimerValue {
        if self.timers[holder].is_msi() || self.cores[holder].has_inflight(line) {
            TimerValue::MSI
        } else {
            l1line.theta
        }
    }

    /// The single source of truth for when `holder` releases `line` to the
    /// request pending since `pending`: the released latch short-circuits,
    /// otherwise the Figure-3 expiry boundary under the effective timer.
    /// Used by candidate readiness, hit classification and switch latching
    /// alike — change release semantics here and nowhere else.
    fn holder_release(
        &self,
        holder: usize,
        line: LineAddr,
        l1line: &L1Line,
        pending: Cycles,
    ) -> Cycles {
        if l1line.released {
            return Cycles::ZERO;
        }
        let timer = self.effective_timer(holder, line, l1line);
        let effective_pending = pending.max(l1line.anchor);
        let normal = release_time(l1line.anchor, timer, effective_pending);
        if self.faults.is_empty() {
            normal
        } else {
            // Timer-window faults (stuck / early expiry) perturb the expiry
            // boundary here and only here, so every consumer of the release
            // instant stays self-consistent under injection.
            self.faults.adjust_release(holder, normal, effective_pending)
        }
    }

    /// Whether every holder the head waiter dispossesses has released the
    /// line by `at`.
    fn holders_released(&self, line: LineAddr, at: Cycles) -> bool {
        self.head_release_instant(line).is_some_and(|r| r <= at)
    }

    /// The instant at which the head waiter's transfer may start: the
    /// latest release among the holders it dispossesses (its own enqueue
    /// instant if nothing needs to release). `None` if the line has no
    /// waiters.
    fn head_release_instant(&self, line: LineAddr) -> Option<Cycles> {
        let coh = self.coh.get(line)?;
        let head = coh.head()?;
        let mut latest = head.enqueued;
        for holder in coh.holders() {
            if holder == head.core || !coh.head_dispossesses(holder) {
                continue;
            }
            let Some(l1line) = self.l1s[holder].peek(line) else {
                continue; // already evicted: released
            };
            let release = self.holder_release(holder, line, l1line, head.enqueued);
            latest = latest.max(release);
        }
        Some(latest)
    }

    fn complete_txn_if_due(&mut self) {
        let Some(txn) = self.txn else { return };
        if txn.ends > self.now {
            return;
        }
        self.txn = None;
        if let TxnKind::Transfer { from } = txn.kind {
            self.finish_transfer(txn.core, txn.line, from, txn.ends);
        }
        self.last_progress = self.now;
    }

    fn try_start_txn(&mut self) {
        if self.txn.is_some() {
            return;
        }
        // One scratch allocation reused across grants; the per-attempt
        // candidate `Vec` dominated the allocator profile on sparse
        // workloads where most attempts grant nothing.
        let mut candidates = std::mem::take(&mut self.cand_buf);
        candidates.clear();
        candidates.extend((0..self.cores.len()).map(|id| self.candidate(id)));
        let Some(granted) = self.arbiter.grant(self.now, &candidates) else {
            self.cand_buf = candidates;
            return;
        };
        let cand = candidates[granted].expect("granted core has a candidate");
        self.arbiter.on_grant(granted);
        if P::ACTIVE {
            let stalled: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|&(core, c)| core != granted && c.is_some())
                .map(|(core, _)| core)
                .collect();
            self.probe.on_arbitration(self.now, granted, &stalled);
        }
        self.cand_buf = candidates;
        let dropped = !self.faults.is_empty()
            && cand.kind == CandidateKind::Broadcast
            && self.faults.take_bus_drop(self.now, granted);
        if dropped {
            // The granted broadcast is lost on the wire: the slot is burned
            // for the request latency, nothing snoops it, and the MSHR entry
            // stays un-broadcast so the requester retries at a later grant.
            let request_latency = self.config.latency().request;
            self.stats.bus_busy += request_latency;
            self.txn = Some(ActiveTxn {
                core: granted,
                line: cand.line,
                ends: self.now + request_latency,
                kind: TxnKind::BroadcastOnly,
            });
        } else {
            match cand.kind {
                CandidateKind::Broadcast => self.start_broadcast(granted),
                CandidateKind::Receive => self.start_receive(granted, cand.line),
            }
        }
        if !self.faults.is_empty() && self.txn.is_some() {
            // A jammed or echoing bus holds the tenure longer than the
            // protocol needs.
            let extra =
                self.faults.take_bus_extra(self.now, granted, self.config.latency().request);
            if extra > Cycles::ZERO {
                if let Some(txn) = &mut self.txn {
                    txn.ends += extra;
                }
                self.stats.bus_busy += extra;
            }
        }
        if self.sched.arming {
            if let Some(txn) = &self.txn {
                self.sched.arm_txn(self.now.get(), txn.ends.get());
            }
        }
        self.last_progress = self.now;
    }

    fn start_broadcast(&mut self, id: usize) {
        let request_latency = self.config.latency().request;
        let m = *self.cores[id].oldest_unbroadcast().expect("broadcast candidate exists");
        let snoop_at = self.now + request_latency;
        self.cores[id].mark_broadcast(m.line);
        let waiter = Waiter { core: id, kind: m.kind, enqueued: snoop_at };
        match self.config.waiter_priority().map(<[bool]>::to_vec) {
            Some(critical) if critical[id] => {
                self.coh.entry(m.line).enqueue_critical(waiter, |c| critical[c]);
            }
            _ => self.coh.entry(m.line).enqueue(waiter),
        }
        self.lines_with_waiters.insert(m.line);
        self.stats.broadcasts += 1;
        if P::ACTIVE {
            self.probe
                .on_event(self.now, &EventKind::Broadcast { core: id, line: m.line, kind: m.kind });
        }

        // Fuse the data response into the same bus tenure when the request
        // is immediately serviceable (head of queue, every holder released
        // by the snoop instant — e.g. the shared memory owns the line, or
        // all holders run MSI).
        let fused = self.coh.get(m.line).is_some_and(|c| c.is_head(id))
            && self.holders_released(m.line, snoop_at);
        if fused {
            let from = self.coh.get(m.line).map_or(Owner::Llc, super::coherence::LineCoh::owner);
            let duration = self.transfer_duration(from, m.line);
            self.stats.transfers += 1;
            if P::ACTIVE {
                self.probe.on_event(
                    snoop_at,
                    &EventKind::TransferStart { from: from.core(), to: id, line: m.line },
                );
            }
            let ends = snoop_at + duration;
            self.stats.bus_busy += ends - self.now;
            if P::ACTIVE {
                self.probe.on_bus_tenure(&BusTenure {
                    core: id,
                    line: m.line,
                    start: self.now,
                    end: ends,
                    kind: TenureKind::Fused { from: from.core() },
                });
            }
            self.txn =
                Some(ActiveTxn { core: id, line: m.line, ends, kind: TxnKind::Transfer { from } });
        } else {
            self.stats.bus_busy += request_latency;
            if P::ACTIVE {
                self.probe.on_bus_tenure(&BusTenure {
                    core: id,
                    line: m.line,
                    start: self.now,
                    end: snoop_at,
                    kind: TenureKind::Broadcast,
                });
            }
            self.txn = Some(ActiveTxn {
                core: id,
                line: m.line,
                ends: snoop_at,
                kind: TxnKind::BroadcastOnly,
            });
        }
    }

    fn start_receive(&mut self, id: usize, line: LineAddr) {
        debug_assert!(
            self.coh.get(line).is_some_and(|c| c.is_head(id))
                && self.holders_released(line, self.now),
            "granted receive candidate is ready"
        );
        let from = self.coh.get(line).map_or(Owner::Llc, super::coherence::LineCoh::owner);
        let duration = self.transfer_duration(from, line);
        self.stats.transfers += 1;
        if P::ACTIVE {
            self.probe
                .on_event(self.now, &EventKind::TransferStart { from: from.core(), to: id, line });
        }
        let ends = self.now + duration;
        self.stats.bus_busy += duration;
        if P::ACTIVE {
            self.probe.on_bus_tenure(&BusTenure {
                core: id,
                line,
                start: self.now,
                end: ends,
                kind: TenureKind::Transfer { from: from.core() },
            });
        }
        self.txn = Some(ActiveTxn { core: id, line, ends, kind: TxnKind::Transfer { from } });
    }

    /// Bus occupancy of the data movement for `line` supplied by `from`,
    /// with LLC bookkeeping (miss counting, fills, back-invalidations).
    fn transfer_duration(&mut self, from: Owner, line: LineAddr) -> Cycles {
        let lat = *self.config.latency();
        match from {
            Owner::Core(_) => {
                if let Some(llc) = &mut self.llc {
                    // Inclusion: a core-owned line is resident in the LLC.
                    if llc.touch(line).is_none() {
                        debug_assert!(false, "inclusion violated for {line}");
                        self.fill_llc(line);
                    }
                }
                match self.config.data_path() {
                    DataPath::CacheToCache => lat.data,
                    // PCC stages the hand-over through the shared memory:
                    // writeback + refetch occupy two data tenures.
                    DataPath::ViaSharedMemory => lat.data * 2,
                }
            }
            Owner::Llc => {
                let hit = match &mut self.llc {
                    None => true,
                    Some(llc) => llc.touch(line).is_some(),
                };
                if hit {
                    lat.data
                } else {
                    self.stats.llc_misses += 1;
                    self.fill_llc(line);
                    lat.data + lat.memory
                }
            }
        }
    }

    /// Inserts `line` into the finite LLC, back-invalidating the victim's
    /// private copies to preserve inclusion. Victims with coherence
    /// activity (holders or waiters) are avoided when possible.
    fn fill_llc(&mut self, line: LineAddr) {
        let coh = &self.coh;
        let evicted = match &mut self.llc {
            None => None,
            Some(llc) => llc.insert_select(line, (), |victim, ()| {
                coh.get(victim).is_none_or(|c| c.holders().next().is_none() && c.head().is_none())
            }),
        };
        if let Some((victim, ())) = evicted {
            let holders: Vec<usize> =
                self.coh.get(victim).map(|c| c.holders().collect()).unwrap_or_default();
            for holder in holders {
                if self.l1s[holder].remove(victim).is_some() {
                    self.stats.back_invalidations += 1;
                    if P::ACTIVE {
                        self.probe.on_event(
                            self.now,
                            &EventKind::Invalidate {
                                core: holder,
                                line: victim,
                                cause: InvalidateCause::BackInvalidation,
                            },
                        );
                    }
                }
            }
            let entry = self.coh.entry(victim);
            entry.set_owner(Owner::Llc);
            entry.clear_sharers();
            self.coh.gc(victim);
        }
    }

    /// Applies the effects of a completed data transfer at `ends`.
    fn finish_transfer(&mut self, to: usize, line: LineAddr, from: Owner, ends: Cycles) {
        // Priority insertion may have displaced the transferee from the
        // head while its transfer was in flight, so dequeue by core.
        let waiter = self
            .coh
            .entry(line)
            .dequeue_for(to)
            .expect("transfer completion implies a queued waiter");
        if self.coh.get(line).is_some_and(|c| c.head().is_none()) {
            self.lines_with_waiters.remove(&line);
        }

        // Dispossess / downgrade the previous holders.
        match waiter.kind {
            ReqKind::GetM => {
                let holders: Vec<usize> =
                    self.coh.get(line).map(|c| c.holders().collect()).unwrap_or_default();
                for holder in holders {
                    if holder == to {
                        continue; // an upgrading requester keeps its copy
                    }
                    if self.l1s[holder].remove(line).is_some() && P::ACTIVE {
                        self.probe.on_event(
                            ends,
                            &EventKind::Invalidate {
                                core: holder,
                                line,
                                cause: InvalidateCause::Stolen,
                            },
                        );
                    }
                }
                let entry = self.coh.entry(line);
                entry.clear_sharers();
                entry.set_owner(Owner::Core(to));
            }
            ReqKind::GetS => {
                if let Owner::Core(owner) = from {
                    if let Some(l1line) = self.l1s[owner].peek_mut(line) {
                        l1line.state = LineState::Shared;
                        if P::ACTIVE {
                            self.probe.on_event(ends, &EventKind::Downgrade { core: owner, line });
                        }
                    }
                    let entry = self.coh.entry(line);
                    entry.set_owner(Owner::Llc);
                    entry.add_sharer(owner);
                }
                // MESI: an unshared read fill from the shared memory with
                // nobody else queued is granted Exclusive; the requester
                // becomes the owner without adding itself as a sharer.
                let entry = self.coh.entry(line);
                let exclusive = self.config.flavor() == ProtocolFlavor::Mesi
                    && matches!(from, Owner::Llc)
                    && entry.sharers().next().is_none()
                    && entry.head().is_none();
                if exclusive {
                    entry.set_owner(Owner::Core(to));
                } else {
                    entry.add_sharer(to);
                }
            }
        }

        // Fill the requester's private cache.
        let state = match waiter.kind {
            ReqKind::GetM => LineState::Modified,
            ReqKind::GetS if self.coh.get(line).is_some_and(|c| c.owner() == Owner::Core(to)) => {
                LineState::Exclusive
            }
            ReqKind::GetS => LineState::Shared,
        };
        let theta_loaded = self.timers[to];
        let evicted = self.l1s[to].insert(line, L1Line::filled(state, ends, theta_loaded));
        if let Some((victim, victim_line)) = evicted {
            self.evict_l1(to, victim, victim_line, ends);
        }
        self.coh.gc(line);

        // Complete the core's MSHR entry and account the request.
        let core = &mut self.cores[to];
        let was_oldest = core.oldest_request().is_some_and(|m| m.line == line);
        let entry = core.complete(line).expect("transfer completes an in-flight miss");
        let latency = ends - entry.issued;
        let stats = &mut self.stats.cores[to];
        stats.misses += 1;
        if entry.upgrade {
            stats.upgrades += 1;
        }
        stats.total_latency += latency;
        stats.worst_request = stats.worst_request.max(latency);
        core.last_completion = ends;
        core.stalled = false;
        core.ready_at = core.ready_at.max(ends);
        let ready = core.ready_at.get();
        if self.sched.arming {
            self.sched.arm_core(self.now.get(), to, ready);
        }
        if P::ACTIVE {
            self.probe
                .on_event(ends, &EventKind::Fill { core: to, line, kind: waiter.kind, latency });
        }
        if was_oldest {
            self.arbiter.on_request_served(to);
        }
        self.mark_done_if_drained(to);
    }

    /// Handles an L1 replacement: a Modified victim's ownership returns to
    /// the shared memory (the write-back is folded into the fill tenure, as
    /// in the paper's fixed data latency), a Shared victim simply drops out.
    fn evict_l1(&mut self, id: usize, victim: LineAddr, victim_line: L1Line, at: Cycles) {
        self.stats.evictions += 1;
        if P::ACTIVE {
            self.probe.on_event(
                at,
                &EventKind::Invalidate {
                    core: id,
                    line: victim,
                    cause: InvalidateCause::Replacement,
                },
            );
        }
        let corrupting = self.faults.may_corrupt_state();
        let entry = self.coh.entry(victim);
        if victim_line.state.is_owned() && entry.owner() == Owner::Core(id) {
            entry.set_owner(Owner::Llc);
        } else {
            // Only an injected corruption fault may detach the physical L1
            // state from the coherence bookkeeping.
            debug_assert!(
                corrupting || !victim_line.state.is_owned(),
                "owned line without ownership"
            );
            entry.remove_sharer(id);
        }
        self.coh.gc(victim);
    }

    // ----- scheduling -----------------------------------------------------

    /// The next instant at which anything can happen, capped at `deadline`.
    fn next_event(&self, deadline: Cycles) -> Cycles {
        let mut next = deadline;
        if let Some(txn) = &self.txn {
            next = next.min(txn.ends);
        }
        for core in &self.cores {
            if core.finish.is_none() && !core.stalled && core.ready_at > self.now {
                next = next.min(core.ready_at);
            }
        }
        if let Some((&at, _)) = self.switches.first_key_value() {
            next = next.min(Cycles::new(at));
        }
        // Pending fault activations are event instants too, so injections
        // never depend on how the caller slices `run_until`.
        if let Some(at) = self.faults.next_activation() {
            if at > self.now {
                next = next.min(at);
            }
        }
        if self.txn.is_none() {
            // Timer releases that will unblock a head waiter.
            for &line in &self.lines_with_waiters {
                if let Some(release) = self.head_release_instant(line) {
                    if release > self.now {
                        next = next.min(release);
                    }
                }
            }
            // TDM can only grant on slot boundaries.
            let opportunity = self.arbiter.next_grant_opportunity(self.now);
            if opportunity > self.now {
                next = next.min(opportunity);
            }
        }
        next
    }

    // ----- validation (tests, property checks) -----------------------------

    /// Checks the coherence invariants (SWMR, bookkeeping/physical-state
    /// agreement, LLC inclusion). Intended for tests; costs a full scan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate_coherence(&self) -> core::result::Result<(), String> {
        let mut owned: BTreeMap<LineAddr, Vec<usize>> = BTreeMap::new();
        let mut shared: BTreeMap<LineAddr, Vec<usize>> = BTreeMap::new();
        for (id, l1) in self.l1s.iter().enumerate() {
            for (line, payload) in l1.iter() {
                if payload.state.is_owned() {
                    owned.entry(line).or_default().push(id);
                } else {
                    shared.entry(line).or_default().push(id);
                }
                if let Some(llc) = &self.llc {
                    if !llc.contains(line) {
                        return Err(format!("inclusion violated: {line} in c{id} not in LLC"));
                    }
                }
            }
        }
        for (line, owners) in &owned {
            if owners.len() > 1 {
                return Err(format!("SWMR violated: {line} owned by {owners:?}"));
            }
            if shared.contains_key(line) {
                return Err(format!("{line} simultaneously owned and Shared"));
            }
            let owner = self.coh.get(*line).map(super::coherence::LineCoh::owner);
            if owner != Some(Owner::Core(owners[0])) {
                return Err(format!(
                    "{line} owned by c{} but coherence owner is {owner:?}",
                    owners[0]
                ));
            }
        }
        for (line, sharers) in &shared {
            let Some(coh) = self.coh.get(*line) else {
                return Err(format!("{line} Shared without a coherence entry"));
            };
            for &s in sharers {
                if !coh.is_sharer(s) {
                    return Err(format!("{line} Shared in c{s} but not tracked as sharer"));
                }
            }
        }
        for (line, coh) in self.coh.iter() {
            if let Owner::Core(id) = coh.owner() {
                let is_owned = self.l1s[id].peek(line).is_some_and(|l| l.state.is_owned());
                if !is_owned {
                    return Err(format!("coherence says c{id} owns {line} but L1 disagrees"));
                }
            }
            for s in coh.sharers() {
                if self.l1s[s].peek(line).is_none() {
                    return Err(format!("coherence says c{s} shares {line} but L1 disagrees"));
                }
            }
        }
        Ok(())
    }
}
