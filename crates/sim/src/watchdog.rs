//! Runtime WCML watchdog: the [`WcmlGuard`] probe.
//!
//! The guard watches a run's request completions against the Eq. 1 WCML
//! envelope of the *currently programmed* θ registers, flags cores that
//! stop making progress, and accepts coherence-violation convictions from
//! an external checker (e.g. [`Simulator::validate_coherence`] polled by a
//! degradation driver). It is a plain [`SimProbe`], so it composes with
//! [`MetricsProbe`](crate::MetricsProbe) and
//! [`InvariantProbe`](crate::InvariantProbe) through the tuple combinators.
//!
//! The guard only *detects*; it takes no action. A controller (the
//! `cohort` crate's degradation driver) polls [`WcmlGuard::violations`]
//! between [`Simulator::run_until`] slices and decides when to drive the
//! Mode-Switch LUT.
//!
//! [`Simulator`]: crate::Simulator
//! [`Simulator::validate_coherence`]: crate::Simulator::validate_coherence
//! [`Simulator::run_until`]: crate::Simulator::run_until

use std::collections::BTreeSet;

use cohort_types::{Cycles, LineAddr, TimerValue};

use crate::event::EventKind;
use crate::metrics::MetricsProbe;
use crate::probe::SimProbe;
use crate::{SimConfig, SimStats};

/// What a [`WcmlViolation`] convicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcmlViolationKind {
    /// A request completed above its core's Eq. 1 WCML bound.
    LatencyBound,
    /// Cores still have work but nothing observable happened for longer
    /// than the progress timeout.
    Progress,
    /// An external coherence check (shadow state, deep validation) failed.
    Coherence,
}

impl WcmlViolationKind {
    /// A stable kebab-case identifier for reports.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            WcmlViolationKind::LatencyBound => "latency-bound",
            WcmlViolationKind::Progress => "progress",
            WcmlViolationKind::Coherence => "coherence",
        }
    }
}

/// One watchdog conviction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcmlViolation {
    /// What was violated.
    pub kind: WcmlViolationKind,
    /// The offending core (the requester for latency violations; `None`
    /// when the conviction is not attributable to one core).
    pub core: Option<usize>,
    /// The line involved, when one is.
    pub line: Option<LineAddr>,
    /// The detection instant (completion cycle for latency violations).
    pub at: Cycles,
    /// When the violated request was issued (latency violations only,
    /// otherwise equals `at`).
    pub issued: Cycles,
    /// Observed request latency in cycles (zero for non-latency kinds).
    pub latency: u64,
    /// The Eq. 1 bound in force when the request completed (zero for
    /// non-latency kinds).
    pub bound: u64,
    /// Free-form detail for coherence convictions.
    pub detail: Option<String>,
}

/// A runtime watchdog probe checking per-request latency against the Eq. 1
/// WCML bound of the live θ registers.
///
/// Bounds are `None` (latency checking disabled) when the configuration is
/// outside the analysis assumptions (non-RROF arbitration, staged data
/// path, multiple MSHRs) or a core's register is −1 (MSI cores have no
/// finite per-request guarantee to enforce). A `TimerSwitch` re-derives
/// every bound from the incoming registers, so the guard follows mode
/// switches automatically.
///
/// # Examples
///
/// ```
/// use cohort_sim::{SimConfig, Simulator, WcmlGuard};
/// use cohort_trace::micro;
/// use cohort_types::TimerValue;
///
/// let config = SimConfig::builder(2).timers(vec![TimerValue::timed(100)?; 2]).build()?;
/// let mut guard = WcmlGuard::new();
/// let mut sim = Simulator::with_probe(config, &micro::ping_pong(2, 8), &mut guard)?;
/// sim.run()?;
/// assert!(guard.violations().is_empty(), "a clean run stays inside Eq. 1");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct WcmlGuard {
    config: Option<SimConfig>,
    timers: Vec<TimerValue>,
    bounds: Vec<Option<u64>>,
    violations: Vec<WcmlViolation>,
    requests: u64,
    mode_switches: u64,
    last_activity: Cycles,
    progress_flagged_at: Option<Cycles>,
    progress_timeout: Option<u64>,
    coherence_seen: BTreeSet<String>,
}

impl WcmlGuard {
    /// Creates a guard with latency-bound checking only.
    #[must_use]
    pub fn new() -> Self {
        WcmlGuard::default()
    }

    /// Additionally convicts a [`WcmlViolationKind::Progress`] violation
    /// when nothing observable happens for `cycles` while cores still have
    /// work (checked by [`WcmlGuard::check_progress`]).
    #[must_use]
    pub fn with_progress_timeout(mut self, cycles: u64) -> Self {
        self.progress_timeout = Some(cycles);
        self
    }

    /// All convictions so far, in detection order.
    #[must_use]
    pub fn violations(&self) -> &[WcmlViolation] {
        &self.violations
    }

    /// Requests (fills) observed so far.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Timer switches observed so far.
    #[must_use]
    pub fn mode_switches(&self) -> u64 {
        self.mode_switches
    }

    /// The per-core Eq. 1 bounds currently enforced (`None` = unbounded).
    #[must_use]
    pub fn bounds(&self) -> &[Option<u64>] {
        &self.bounds
    }

    /// The θ registers as the guard last observed them.
    #[must_use]
    pub fn timers(&self) -> &[TimerValue] {
        &self.timers
    }

    fn recompute_bounds(&mut self) {
        let Some(config) = &self.config else { return };
        if MetricsProbe::analysable(config) {
            self.bounds = (0..self.timers.len())
                .map(|core| {
                    // MSI cores renounce their latency guarantee — that is
                    // the degradation the watchdog drives *to*, so it must
                    // not keep convicting them afterwards.
                    self.timers[core]
                        .is_timed()
                        .then(|| MetricsProbe::eq1_bound(core, &self.timers, config))
                })
                .collect();
        } else {
            self.bounds = vec![None; self.timers.len()];
        }
    }

    /// Driver-assisted progress check between `run_until` slices: convicts
    /// a [`WcmlViolationKind::Progress`] violation when `active` names at
    /// least one unfinished core and nothing observable happened for the
    /// configured timeout. At most one conviction per stall episode.
    pub fn check_progress(&mut self, now: Cycles, active: &[bool]) {
        let Some(timeout) = self.progress_timeout else { return };
        if self.progress_flagged_at == Some(self.last_activity) {
            return; // this stall episode is already convicted
        }
        if active.iter().any(|&a| a) && now.get().saturating_sub(self.last_activity.get()) > timeout
        {
            self.progress_flagged_at = Some(self.last_activity);
            self.violations.push(WcmlViolation {
                kind: WcmlViolationKind::Progress,
                core: active.iter().position(|&a| a),
                line: None,
                at: now,
                issued: self.last_activity,
                latency: 0,
                bound: 0,
                detail: None,
            });
        }
    }

    /// Records an externally detected coherence violation (e.g. a failed
    /// [`Simulator::validate_coherence`] between `run_until` slices).
    /// Identical descriptions are deduplicated, so a driver can poll the
    /// same persistent corruption every slice without flooding the log.
    ///
    /// [`Simulator::validate_coherence`]: crate::Simulator::validate_coherence
    pub fn note_coherence_violation(&mut self, at: Cycles, core: Option<usize>, detail: &str) {
        if !self.coherence_seen.insert(detail.to_owned()) {
            return;
        }
        self.violations.push(WcmlViolation {
            kind: WcmlViolationKind::Coherence,
            core,
            line: None,
            at,
            issued: at,
            latency: 0,
            bound: 0,
            detail: Some(detail.to_owned()),
        });
    }
}

impl SimProbe for WcmlGuard {
    fn on_start(&mut self, config: &SimConfig) {
        self.timers = config.timers().to_vec();
        self.config = Some(config.clone());
        self.bounds.clear();
        self.violations.clear();
        self.requests = 0;
        self.mode_switches = 0;
        self.last_activity = Cycles::ZERO;
        self.progress_flagged_at = None;
        self.coherence_seen.clear();
        self.recompute_bounds();
    }

    fn on_event(&mut self, cycle: Cycles, kind: &EventKind) {
        self.last_activity = self.last_activity.max(cycle);
        match kind {
            EventKind::Fill { core, line, latency, .. } => {
                self.requests += 1;
                if let Some(Some(bound)) = self.bounds.get(*core) {
                    if latency.get() > *bound {
                        self.violations.push(WcmlViolation {
                            kind: WcmlViolationKind::LatencyBound,
                            core: Some(*core),
                            line: Some(*line),
                            at: cycle,
                            issued: Cycles::new(cycle.get().saturating_sub(latency.get())),
                            latency: latency.get(),
                            bound: *bound,
                            detail: None,
                        });
                    }
                }
            }
            EventKind::TimerSwitch { timers } => {
                self.mode_switches += 1;
                self.timers.clone_from(timers);
                self.recompute_bounds();
            }
            _ => {}
        }
    }

    fn on_finish(&mut self, _stats: &SimStats) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coherence::ReqKind;

    fn config(cores: usize, theta: u64) -> SimConfig {
        SimConfig::builder(cores)
            .timers(vec![TimerValue::timed(theta).expect("θ fits"); cores])
            .build()
            .expect("valid config")
    }

    fn fill(core: usize, latency: u64) -> EventKind {
        EventKind::Fill {
            core,
            line: LineAddr::new(7),
            kind: ReqKind::GetS,
            latency: Cycles::new(latency),
        }
    }

    #[test]
    fn convicts_fills_above_the_bound_only() {
        let cfg = config(4, 300);
        let mut guard = WcmlGuard::new();
        guard.on_start(&cfg);
        let bound = guard.bounds()[0].expect("analysable preset has a bound");
        guard.on_event(Cycles::new(100), &fill(0, bound));
        assert!(guard.violations().is_empty(), "at the bound is compliant");
        guard.on_event(Cycles::new(5_000), &fill(0, bound + 1));
        assert_eq!(guard.violations().len(), 1);
        let v = &guard.violations()[0];
        assert_eq!(v.kind, WcmlViolationKind::LatencyBound);
        assert_eq!(v.core, Some(0));
        assert_eq!(v.latency, bound + 1);
        assert_eq!(v.issued.get() + v.latency, v.at.get());
        assert_eq!(guard.requests(), 2);
    }

    #[test]
    fn timer_switch_rebounds_and_msi_cores_are_exempt() {
        let cfg = config(2, 300);
        let mut guard = WcmlGuard::new();
        guard.on_start(&cfg);
        assert!(guard.bounds().iter().all(Option::is_some));
        guard.on_event(
            Cycles::new(10),
            &EventKind::TimerSwitch {
                timers: vec![TimerValue::timed(300).expect("θ fits"), TimerValue::MSI],
            },
        );
        assert!(guard.bounds()[0].is_some());
        assert!(guard.bounds()[1].is_none(), "an MSI core has no bound to enforce");
        // The degraded core's huge latency no longer convicts.
        guard.on_event(Cycles::new(50_000), &fill(1, 40_000));
        assert!(guard.violations().is_empty());
        assert_eq!(guard.mode_switches(), 1);
    }

    #[test]
    fn progress_and_coherence_convictions() {
        let cfg = config(2, 300);
        let mut guard = WcmlGuard::new().with_progress_timeout(1_000);
        guard.on_start(&cfg);
        guard.on_event(Cycles::new(10), &fill(0, 5));
        guard.check_progress(Cycles::new(500), &[true, false]);
        assert!(guard.violations().is_empty(), "inside the timeout");
        guard.check_progress(Cycles::new(2_000), &[true, false]);
        guard.check_progress(Cycles::new(3_000), &[true, false]);
        let progress: Vec<_> =
            guard.violations().iter().filter(|v| v.kind == WcmlViolationKind::Progress).collect();
        assert_eq!(progress.len(), 1, "one conviction per stall episode");
        guard.note_coherence_violation(Cycles::new(100), Some(1), "SWMR violated: L7");
        guard.note_coherence_violation(Cycles::new(200), Some(1), "SWMR violated: L7");
        let coherence: Vec<_> =
            guard.violations().iter().filter(|v| v.kind == WcmlViolationKind::Coherence).collect();
        assert_eq!(coherence.len(), 1, "identical convictions deduplicate");
    }
}
