//! Bus arbitration policies: RROF, round-robin, TDM (PENDULUM) and FCFS.

use std::collections::VecDeque;

use cohort_types::Cycles;

use crate::ArbiterKind;

/// What a core wants to do with the bus when granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateKind {
    /// Pull ready data for its oldest pending request (the owner has
    /// released the line and the request is at the head of the line queue).
    Receive,
    /// Broadcast its oldest not-yet-broadcast request.
    Broadcast,
}

/// A core's bus candidate at an arbitration instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Receive or broadcast.
    pub kind: CandidateKind,
    /// Issue time of the underlying request (FCFS ordering key).
    pub issued: Cycles,
    /// The line the underlying request targets (so the engine does not
    /// re-derive it after a grant).
    pub line: cohort_types::LineAddr,
}

/// Stateful bus arbiter.
///
/// The engine calls [`Arbiter::grant`] whenever the bus is free, passing one
/// optional [`Candidate`] per core; the arbiter picks the core to serve.
/// [`Arbiter::on_grant`] and [`Arbiter::on_request_served`] update the
/// rotation state:
///
/// - **RROF** rotates a core to the back only when its oldest request is
///   *served* (a completed data transfer), so a core that merely broadcasts
///   keeps its position — the property that tightens Eq. 1;
/// - **round-robin** rotates on any grant;
/// - **TDM** grants only at slot boundaries, to the slot-owning critical
///   core, or to a non-critical core only if *no* critical core wants the
///   bus (PENDULUM's unfair rule);
/// - **FCFS** picks the oldest request system-wide (COTS baseline).
#[derive(Debug, Clone)]
pub struct Arbiter {
    policy: Policy,
    slot_width: Cycles,
}

#[derive(Debug, Clone)]
enum Policy {
    Rrof { order: VecDeque<usize> },
    RoundRobin { order: VecDeque<usize> },
    Tdm { critical: Vec<usize>, noncritical: VecDeque<usize>, mask: Vec<bool> },
    Fcfs,
}

impl Arbiter {
    /// Creates an arbiter for `cores` cores with the given slot width
    /// (`SW`, used only by TDM).
    ///
    /// # Panics
    ///
    /// Panics if a TDM mask length mismatches `cores` or names no critical
    /// core — [`crate::SimConfig`] validation rejects these before an
    /// arbiter is ever constructed.
    #[must_use]
    pub fn new(kind: &ArbiterKind, cores: usize, slot_width: Cycles) -> Self {
        let policy = match kind {
            ArbiterKind::Rrof => Policy::Rrof { order: (0..cores).collect() },
            ArbiterKind::RoundRobin => Policy::RoundRobin { order: (0..cores).collect() },
            ArbiterKind::Tdm { critical } => {
                assert_eq!(critical.len(), cores, "TDM mask must cover all cores");
                let crit: Vec<usize> =
                    critical.iter().enumerate().filter(|(_, &c)| c).map(|(i, _)| i).collect();
                assert!(!crit.is_empty(), "TDM needs a critical core");
                let noncrit =
                    critical.iter().enumerate().filter(|(_, &c)| !c).map(|(i, _)| i).collect();
                Policy::Tdm { critical: crit, noncritical: noncrit, mask: critical.clone() }
            }
            ArbiterKind::Fcfs => Policy::Fcfs,
        };
        Arbiter { policy, slot_width }
    }

    /// Picks the core to grant the bus to at cycle `now`, or `None` if no
    /// candidate is grantable at this instant.
    #[must_use]
    pub fn grant(&self, now: Cycles, candidates: &[Option<Candidate>]) -> Option<usize> {
        match &self.policy {
            Policy::Rrof { order } | Policy::RoundRobin { order } => {
                order.iter().copied().find(|&c| candidates[c].is_some())
            }
            Policy::Tdm { critical, noncritical, mask } => {
                if !now.get().is_multiple_of(self.slot_width.get()) {
                    return None; // transactions start on slot boundaries
                }
                let slot = (now.get() / self.slot_width.get()) as usize % critical.len();
                let owner = critical[slot];
                if candidates[owner].is_some() {
                    return Some(owner);
                }
                // PENDULUM rule: non-critical cores ride a slot only when no
                // critical core has a pending candidate.
                if critical.iter().any(|&c| candidates[c].is_some()) {
                    return None; // idle slot
                }
                let _ = mask;
                noncritical.iter().copied().find(|&c| candidates[c].is_some())
            }
            Policy::Fcfs => candidates
                .iter()
                .enumerate()
                .filter_map(|(core, c)| c.map(|c| (core, c.issued)))
                .min_by_key(|&(core, issued)| (issued, core))
                .map(|(core, _)| core),
        }
    }

    /// The earliest instant strictly relevant for a new grant attempt after
    /// `now` if nothing else changes (TDM slot alignment); event-driven
    /// policies can grant at any cycle, so they return `now`.
    #[must_use]
    pub fn next_grant_opportunity(&self, now: Cycles) -> Cycles {
        match &self.policy {
            Policy::Tdm { .. } => {
                let sw = self.slot_width.get();
                Cycles::new((now.get() / sw + 1) * sw)
            }
            _ => now,
        }
    }

    /// Notifies the arbiter that `core` was granted the bus (any action).
    pub fn on_grant(&mut self, core: usize) {
        if let Policy::RoundRobin { order } = &mut self.policy {
            rotate_to_back(order, core);
        }
    }

    /// Notifies the arbiter that `core`'s oldest request completed (data
    /// received) — the RROF rotation point.
    pub fn on_request_served(&mut self, core: usize) {
        if let Policy::Rrof { order } = &mut self.policy {
            rotate_to_back(order, core);
        }
    }

    /// Current rotation order (for the event log and tests); `None` for
    /// policies without one.
    #[must_use]
    pub fn order(&self) -> Option<Vec<usize>> {
        match &self.policy {
            Policy::Rrof { order } | Policy::RoundRobin { order } => {
                Some(order.iter().copied().collect())
            }
            _ => None,
        }
    }
}

fn rotate_to_back(order: &mut VecDeque<usize>, core: usize) {
    if let Some(pos) = order.iter().position(|&c| c == core) {
        order.remove(pos);
        order.push_back(core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::unnecessary_wraps)] // candidate slots are Option-typed
    fn cand(issued: u64, kind: CandidateKind) -> Option<Candidate> {
        Some(Candidate { kind, issued: Cycles::new(issued), line: cohort_types::LineAddr::new(0) })
    }

    const SW: Cycles = Cycles::new(54);

    #[test]
    fn rrof_keeps_position_until_served() {
        let mut arb = Arbiter::new(&ArbiterKind::Rrof, 3, SW);
        let c = [cand(0, CandidateKind::Broadcast), cand(0, CandidateKind::Broadcast), None];
        assert_eq!(arb.grant(Cycles::ZERO, &c), Some(0));
        // Core 0 broadcast (not served): keeps its position.
        assert_eq!(arb.grant(Cycles::new(4), &c), Some(0));
        // Once served, it rotates to the back.
        arb.on_request_served(0);
        assert_eq!(arb.grant(Cycles::new(8), &c), Some(1));
        assert_eq!(arb.order().unwrap(), vec![1, 2, 0]);
    }

    #[test]
    fn rrof_skips_cores_without_candidates() {
        let arb = Arbiter::new(&ArbiterKind::Rrof, 3, SW);
        let c = [None, None, cand(0, CandidateKind::Receive)];
        assert_eq!(arb.grant(Cycles::ZERO, &c), Some(2));
    }

    #[test]
    fn round_robin_rotates_on_any_grant() {
        let mut arb = Arbiter::new(&ArbiterKind::RoundRobin, 2, SW);
        let c = [cand(0, CandidateKind::Broadcast), cand(0, CandidateKind::Broadcast)];
        assert_eq!(arb.grant(Cycles::ZERO, &c), Some(0));
        arb.on_grant(0);
        assert_eq!(arb.grant(Cycles::new(4), &c), Some(1));
        arb.on_grant(1);
        assert_eq!(arb.grant(Cycles::new(8), &c), Some(0));
    }

    #[test]
    fn tdm_grants_only_on_slot_boundaries() {
        let kind = ArbiterKind::Tdm { critical: vec![true, true, false, false] };
        let arb = Arbiter::new(&kind, 4, SW);
        let c = [cand(0, CandidateKind::Receive), None, None, None];
        assert_eq!(arb.grant(Cycles::ZERO, &c), Some(0));
        assert_eq!(arb.grant(Cycles::new(1), &c), None, "mid-slot grant refused");
        // Slot 1 belongs to core 1, which has nothing; core 0 (critical)
        // wants the bus, so the slot idles — strict TDM.
        assert_eq!(arb.grant(SW, &c), None);
        // Core 0's own slot comes around again.
        assert_eq!(arb.grant(Cycles::new(108), &c), Some(0));
    }

    #[test]
    fn tdm_noncritical_rides_only_fully_idle_slots() {
        let kind = ArbiterKind::Tdm { critical: vec![true, false] };
        let arb = Arbiter::new(&kind, 2, SW);
        // Critical core idle, non-critical wants the bus: granted.
        let only_ncr = [None, cand(0, CandidateKind::Broadcast)];
        assert_eq!(arb.grant(Cycles::ZERO, &only_ncr), Some(1));
        // Critical core busy-wanting: the non-critical core is starved even
        // in slots the critical owner leaves idle elsewhere.
        let both = [cand(5, CandidateKind::Broadcast), cand(0, CandidateKind::Broadcast)];
        assert_eq!(arb.grant(Cycles::ZERO, &both), Some(0));
    }

    #[test]
    fn tdm_next_opportunity_is_next_boundary() {
        let kind = ArbiterKind::Tdm { critical: vec![true] };
        let arb = Arbiter::new(&kind, 1, SW);
        assert_eq!(arb.next_grant_opportunity(Cycles::ZERO).get(), 54);
        assert_eq!(arb.next_grant_opportunity(Cycles::new(53)).get(), 54);
        assert_eq!(arb.next_grant_opportunity(Cycles::new(54)).get(), 108);
    }

    #[test]
    fn fcfs_picks_globally_oldest() {
        let arb = Arbiter::new(&ArbiterKind::Fcfs, 3, SW);
        let c = [
            cand(9, CandidateKind::Broadcast),
            cand(3, CandidateKind::Broadcast),
            cand(3, CandidateKind::Receive),
        ];
        // Tie on issue time broken by core index.
        assert_eq!(arb.grant(Cycles::ZERO, &c), Some(1));
    }

    #[test]
    fn event_driven_policies_need_no_alignment() {
        let arb = Arbiter::new(&ArbiterKind::Rrof, 2, SW);
        assert_eq!(arb.next_grant_opportunity(Cycles::new(17)).get(), 17);
    }
}
