//! Bus-visible coherence bookkeeping: owners, sharers and waiter queues.
//!
//! On a snooping bus every cache observes every broadcast, so the global
//! coherence state — who owns each line, who shares it, and which requests
//! are queued behind it — is common knowledge. This module models that
//! common knowledge as a map from line address to [`LineCoh`]. It is pure
//! bookkeeping: all timing (release instants, transfer durations) lives in
//! the engine.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use cohort_types::{Cycles, LineAddr};

/// Who supplies the data for the next transfer of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// The shared memory (LLC, possibly backed by DRAM) owns the line.
    Llc,
    /// A core's private cache owns the line in Modified state.
    Core(usize),
}

impl Owner {
    /// Returns the owning core's index, if a core owns the line.
    #[must_use]
    pub const fn core(self) -> Option<usize> {
        match self {
            Owner::Core(c) => Some(c),
            Owner::Llc => None,
        }
    }
}

/// The coherence request a waiter issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqKind {
    /// Read request (load miss).
    GetS,
    /// Write/ownership request (store miss or upgrade from Shared).
    GetM,
}

impl ReqKind {
    /// Returns `true` for ownership (write) requests.
    #[must_use]
    pub const fn is_get_m(self) -> bool {
        matches!(self, ReqKind::GetM)
    }
}

/// One queued requester of a line, in broadcast order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// The requesting core.
    pub core: usize,
    /// GetS or GetM.
    pub kind: ReqKind,
    /// Cycle the broadcast completed (when every snooper saw it).
    pub enqueued: Cycles,
}

/// Bus-visible coherence state of one line.
#[derive(Debug, Clone, Default)]
pub struct LineCoh {
    owner_core: Option<usize>,
    sharers: u64,
    waiters: VecDeque<Waiter>,
}

impl LineCoh {
    /// The current data owner.
    #[must_use]
    pub fn owner(&self) -> Owner {
        match self.owner_core {
            Some(c) => Owner::Core(c),
            None => Owner::Llc,
        }
    }

    /// Sets the owner.
    ///
    /// In debug builds this asserts the exclusivity invariant: a core may
    /// only take ownership of a line with no Shared holders (the protocol
    /// always invalidates or downgrades sharers before a hand-over), so a
    /// line never has both an owner core and sharers.
    pub fn set_owner(&mut self, owner: Owner) {
        debug_assert!(
            owner.core().is_none() || self.sharers == 0,
            "core {:?} may not own a line that still has sharers {:#b}",
            owner.core(),
            self.sharers
        );
        self.owner_core = owner.core();
    }

    /// Returns `true` if `core` holds a Shared copy.
    #[must_use]
    pub fn is_sharer(&self, core: usize) -> bool {
        self.sharers & (1 << core) != 0
    }

    /// Adds a Shared holder.
    ///
    /// In debug builds this asserts the exclusivity invariant: Shared
    /// copies may only coexist with LLC ownership (an owning core is
    /// downgraded — and its ownership returned — before anyone else gets a
    /// copy), so the owner is never also in the sharer bitmask.
    pub fn add_sharer(&mut self, core: usize) {
        debug_assert!(
            self.owner_core.is_none(),
            "cannot add sharer c{core} while c{} owns the line",
            self.owner_core.unwrap_or(usize::MAX)
        );
        self.sharers |= 1 << core;
    }

    /// Removes a Shared holder.
    pub fn remove_sharer(&mut self, core: usize) {
        self.sharers &= !(1 << core);
    }

    /// Clears all Shared holders.
    pub fn clear_sharers(&mut self) {
        self.sharers = 0;
    }

    /// Iterates over the cores holding Shared copies.
    pub fn sharers(&self) -> impl Iterator<Item = usize> + '_ {
        (0..64).filter(move |c| self.sharers & (1 << c) != 0)
    }

    /// Every core currently holding a copy (owner first if a core owns it).
    pub fn holders(&self) -> impl Iterator<Item = usize> + '_ {
        self.owner_core.into_iter().chain(self.sharers())
    }

    /// The queued requesters, oldest first.
    #[must_use]
    pub fn waiters(&self) -> &VecDeque<Waiter> {
        &self.waiters
    }

    /// The request at the head of the queue (the next to be served).
    #[must_use]
    pub fn head(&self) -> Option<&Waiter> {
        self.waiters.front()
    }

    /// Appends a snooped request.
    pub fn enqueue(&mut self, waiter: Waiter) {
        self.waiters.push_back(waiter);
    }

    /// Enqueues a snooped request from a *critical* core ahead of any
    /// queued non-critical waiters (PENDULUM's priority rule: Cr requests
    /// never wait behind nCr requests). `is_critical` classifies queued
    /// cores; ordering among critical waiters stays FIFO.
    pub fn enqueue_critical(&mut self, waiter: Waiter, is_critical: impl Fn(usize) -> bool) {
        let pos =
            self.waiters.iter().position(|w| !is_critical(w.core)).unwrap_or(self.waiters.len());
        self.waiters.insert(pos, waiter);
    }

    /// Pops the served head request.
    pub fn dequeue(&mut self) -> Option<Waiter> {
        self.waiters.pop_front()
    }

    /// Removes and returns the first queued request from `core` (used when
    /// priority insertion may have displaced the head after a transfer was
    /// already in flight).
    pub fn dequeue_for(&mut self, core: usize) -> Option<Waiter> {
        let pos = self.waiters.iter().position(|w| w.core == core)?;
        self.waiters.remove(pos)
    }

    /// Returns `true` if `core`'s oldest queued request is the head.
    #[must_use]
    pub fn is_head(&self, core: usize) -> bool {
        self.head().is_some_and(|w| w.core == core)
    }

    /// Returns `true` if this entry carries no information (LLC-owned, no
    /// holders, no waiters) and can be garbage-collected.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.owner_core.is_none() && self.sharers == 0 && self.waiters.is_empty()
    }

    /// Whether the head waiter's request requires `holder` to *invalidate*
    /// (GetM steals from everyone; GetS only dispossesses the Modified
    /// owner, which downgrades rather than invalidates — but in both cases
    /// the holder must *release* before the transfer starts).
    #[must_use]
    pub fn head_dispossesses(&self, holder: usize) -> bool {
        match self.head() {
            Some(w) if w.kind.is_get_m() => {
                self.owner_core == Some(holder) || self.is_sharer(holder)
            }
            Some(_) => self.owner_core == Some(holder),
            None => false,
        }
    }
}

/// The global line-address → coherence-state map.
#[derive(Debug, Clone, Default)]
pub struct CoherenceMap {
    lines: BTreeMap<LineAddr, LineCoh>,
}

impl CoherenceMap {
    /// Creates an empty map (every line owned by the LLC).
    #[must_use]
    pub fn new() -> Self {
        CoherenceMap::default()
    }

    /// Returns the state of a line, if any non-trivial state is recorded.
    #[must_use]
    pub fn get(&self, line: LineAddr) -> Option<&LineCoh> {
        self.lines.get(&line)
    }

    /// Returns a mutable entry, creating a trivial one if absent.
    pub fn entry(&mut self, line: LineAddr) -> &mut LineCoh {
        self.lines.entry(line).or_default()
    }

    /// Drops the entry if it carries no information.
    pub fn gc(&mut self, line: LineAddr) {
        if self.lines.get(&line).is_some_and(LineCoh::is_trivial) {
            self.lines.remove(&line);
        }
    }

    /// Iterates over all tracked lines.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &LineCoh)> {
        self.lines.iter().map(|(l, c)| (*l, c))
    }

    /// Number of tracked (non-trivial) lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Returns `true` if no line is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_line_is_llc_owned() {
        let line = LineCoh::default();
        assert_eq!(line.owner(), Owner::Llc);
        assert!(line.is_trivial());
        assert_eq!(line.holders().count(), 0);
    }

    #[test]
    fn sharer_bitmask() {
        let mut line = LineCoh::default();
        line.add_sharer(0);
        line.add_sharer(3);
        assert!(line.is_sharer(0));
        assert!(!line.is_sharer(1));
        assert_eq!(line.sharers().collect::<Vec<_>>(), vec![0, 3]);
        line.remove_sharer(0);
        assert!(!line.is_sharer(0));
        line.clear_sharers();
        assert_eq!(line.sharers().count(), 0);
    }

    #[test]
    fn holders_include_owner_and_sharers() {
        // An owning core is the sole holder (exclusivity invariant) …
        let mut line = LineCoh::default();
        line.set_owner(Owner::Core(2));
        assert_eq!(line.holders().collect::<Vec<_>>(), vec![2]);
        // … and under LLC ownership the holders are exactly the sharers.
        let mut line = LineCoh::default();
        line.add_sharer(1);
        line.add_sharer(3);
        assert_eq!(line.holders().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "may not own a line that still has sharers")]
    #[cfg(debug_assertions)]
    fn owner_with_sharers_is_rejected() {
        let mut line = LineCoh::default();
        line.add_sharer(1);
        line.set_owner(Owner::Core(2));
    }

    #[test]
    #[should_panic(expected = "cannot add sharer")]
    #[cfg(debug_assertions)]
    fn sharer_under_core_owner_is_rejected() {
        let mut line = LineCoh::default();
        line.set_owner(Owner::Core(0));
        line.add_sharer(1);
    }

    #[test]
    fn waiter_queue_is_fifo() {
        let mut line = LineCoh::default();
        line.enqueue(Waiter { core: 1, kind: ReqKind::GetM, enqueued: Cycles::new(5) });
        line.enqueue(Waiter { core: 2, kind: ReqKind::GetS, enqueued: Cycles::new(9) });
        assert!(line.is_head(1));
        assert!(!line.is_head(2));
        assert_eq!(line.dequeue().unwrap().core, 1);
        assert!(line.is_head(2));
    }

    #[test]
    fn dispossession_rules() {
        // GetM dispossesses a Modified owner …
        let mut line = LineCoh::default();
        line.set_owner(Owner::Core(0));
        line.enqueue(Waiter { core: 2, kind: ReqKind::GetM, enqueued: Cycles::ZERO });
        assert!(line.head_dispossesses(0));
        assert!(!line.head_dispossesses(3));

        // … and Shared holders alike.
        let mut line = LineCoh::default();
        line.add_sharer(1);
        line.add_sharer(3);
        line.enqueue(Waiter { core: 2, kind: ReqKind::GetM, enqueued: Cycles::ZERO });
        assert!(line.head_dispossesses(1));
        assert!(line.head_dispossesses(3));
        assert!(!line.head_dispossesses(2), "the requester itself is never dispossessed");

        // GetS only dispossesses the Modified owner, never sharers.
        let mut line = LineCoh::default();
        line.set_owner(Owner::Core(0));
        line.enqueue(Waiter { core: 2, kind: ReqKind::GetS, enqueued: Cycles::ZERO });
        assert!(line.head_dispossesses(0));
        assert!(!line.head_dispossesses(1));

        let mut line = LineCoh::default();
        line.add_sharer(1);
        line.enqueue(Waiter { core: 2, kind: ReqKind::GetS, enqueued: Cycles::ZERO });
        assert!(!line.head_dispossesses(1), "GetS leaves Shared copies in place");
    }

    #[test]
    fn dispossession_follows_the_head_across_kinds() {
        // A GetS head behind it does not shield holders from the GetM head
        // (and vice versa once the head is served).
        let mut line = LineCoh::default();
        line.set_owner(Owner::Core(0));
        line.enqueue(Waiter { core: 1, kind: ReqKind::GetS, enqueued: Cycles::ZERO });
        line.enqueue(Waiter { core: 2, kind: ReqKind::GetM, enqueued: Cycles::new(4) });
        // Head is the GetS: only the owner releases.
        assert!(line.head_dispossesses(0));
        assert_eq!(line.head().unwrap().kind, ReqKind::GetS);
        // Serve the GetS (owner downgrades to Shared under LLC ownership).
        line.dequeue();
        line.set_owner(Owner::Llc);
        line.add_sharer(0);
        line.add_sharer(1);
        // Now the GetM head dispossesses both sharers but not the requester.
        assert!(line.head_dispossesses(0));
        assert!(line.head_dispossesses(1));
        assert!(!line.head_dispossesses(2));
        // No waiters → nobody is dispossessed.
        line.dequeue();
        assert!(!line.head_dispossesses(0));
    }

    #[test]
    fn enqueue_critical_orders_by_criticality_then_fifo() {
        let critical = |c: usize| c == 0 || c == 1;
        let w =
            |core: usize, at: u64| Waiter { core, kind: ReqKind::GetM, enqueued: Cycles::new(at) };
        let mut line = LineCoh::default();
        // Two non-critical waiters arrive first.
        line.enqueue(w(2, 1));
        line.enqueue(w(3, 2));
        // A critical waiter jumps ahead of every queued non-critical one.
        line.enqueue_critical(w(0, 3), critical);
        // A second critical waiter stays FIFO among criticals.
        line.enqueue_critical(w(1, 4), critical);
        let order: Vec<usize> = line.waiters().iter().map(|w| w.core).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);

        // Plain enqueue of a non-critical request goes to the back.
        line.enqueue(w(2, 5));
        assert_eq!(line.waiters().len(), 5);
        assert_eq!(line.waiters().back().unwrap().core, 2);
    }

    #[test]
    fn enqueue_critical_in_empty_and_all_critical_queues_is_fifo() {
        let critical = |_: usize| true;
        let w = |core: usize| Waiter { core, kind: ReqKind::GetS, enqueued: Cycles::ZERO };
        let mut line = LineCoh::default();
        line.enqueue_critical(w(1), critical);
        line.enqueue_critical(w(0), critical);
        line.enqueue_critical(w(2), critical);
        let order: Vec<usize> = line.waiters().iter().map(|w| w.core).collect();
        assert_eq!(order, vec![1, 0, 2], "all-critical queues degenerate to FIFO");
    }

    #[test]
    fn map_gc_drops_trivial_entries() {
        let mut map = CoherenceMap::new();
        let line = LineAddr::new(7);
        map.entry(line).set_owner(Owner::Core(0));
        assert_eq!(map.len(), 1);
        map.entry(line).set_owner(Owner::Llc);
        map.gc(line);
        assert!(map.is_empty());
        assert!(map.get(line).is_none());
    }
}
