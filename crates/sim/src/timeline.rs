//! ASCII timeline rendering of event logs — one lane per core, like the
//! paper's Figure 1/4 diagrams. A debugging and teaching aid: run a small
//! workload under an [`EventLogProbe`](crate::EventLogProbe) and print what
//! the coherence engine actually did, cycle by cycle.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cohort_types::LineAddr;

use crate::{Event, EventKind};

/// Options for [`render_timeline`].
#[derive(Debug, Clone)]
pub struct TimelineOptions {
    /// Only show events touching this line (`None` = all lines).
    pub line: Option<LineAddr>,
    /// Cycles per output column (events within a bucket share a column).
    pub cycles_per_column: u64,
    /// Maximum number of columns before the timeline is truncated.
    pub max_columns: usize,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions { line: None, cycles_per_column: 10, max_columns: 120 }
    }
}

/// One-character glyphs per event class (the legend of the rendering).
fn glyph(kind: &EventKind) -> Option<char> {
    Some(match kind {
        EventKind::Hit { .. } => '+',
        EventKind::MissIssued { .. } => '?',
        EventKind::Broadcast { .. } => 'B',
        EventKind::TransferStart { .. } => '>',
        EventKind::Fill { .. } => 'F',
        EventKind::Downgrade { .. } => 'd',
        EventKind::Invalidate { .. } => 'x',
        EventKind::TimerSwitch { .. } => return None, // global, shown in header
    })
}

fn core_of(kind: &EventKind) -> Option<usize> {
    Some(match kind {
        EventKind::Hit { core, .. }
        | EventKind::MissIssued { core, .. }
        | EventKind::Broadcast { core, .. }
        | EventKind::Fill { core, .. }
        | EventKind::Downgrade { core, .. }
        | EventKind::Invalidate { core, .. } => *core,
        EventKind::TransferStart { to, .. } => *to,
        EventKind::TimerSwitch { .. } => return None,
    })
}

fn line_of(kind: &EventKind) -> Option<LineAddr> {
    Some(match kind {
        EventKind::Hit { line, .. }
        | EventKind::MissIssued { line, .. }
        | EventKind::Broadcast { line, .. }
        | EventKind::TransferStart { line, .. }
        | EventKind::Fill { line, .. }
        | EventKind::Downgrade { line, .. }
        | EventKind::Invalidate { line, .. } => *line,
        EventKind::TimerSwitch { .. } => return None,
    })
}

/// Renders an event log as per-core ASCII lanes.
///
/// Legend: `+` hit, `?` miss issued, `B` broadcast, `>` transfer starts,
/// `F` fill, `d` downgrade, `x` invalidate, `·` idle. When several events
/// share a column the most significant one (later in the legend order
/// above) wins.
///
/// # Examples
///
/// ```
/// use cohort_sim::{render_timeline, EventLogProbe, SimConfig, Simulator, TimelineOptions};
/// use cohort_trace::micro;
///
/// let config = SimConfig::builder(2).build()?;
/// let mut probe = EventLogProbe::new();
/// let mut sim = Simulator::with_probe(config, &micro::ping_pong(2, 2), &mut probe)?;
/// sim.run()?;
/// let art = render_timeline(&probe.to_vec(), 2, &TimelineOptions::default());
/// assert!(art.contains("c0"));
/// assert!(art.contains('F'), "fills appear on the timeline");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn render_timeline(events: &[Event], cores: usize, options: &TimelineOptions) -> String {
    let quantum = options.cycles_per_column.max(1);
    // bucket → per-core glyph (later-ranked glyph wins inside a bucket).
    let rank = |c: char| "·+?B>dxF".find(c).unwrap_or(0);
    let mut lanes: Vec<BTreeMap<u64, char>> = vec![BTreeMap::new(); cores];
    let mut switches: Vec<u64> = Vec::new();
    let mut last_bucket = 0u64;
    for event in events {
        if matches!(event.kind, EventKind::TimerSwitch { .. }) {
            switches.push(event.cycle.get());
            continue;
        }
        if let Some(filter) = options.line {
            if line_of(&event.kind) != Some(filter) {
                continue;
            }
        }
        let (Some(core), Some(g)) = (core_of(&event.kind), glyph(&event.kind)) else { continue };
        if core >= cores {
            continue;
        }
        let bucket = event.cycle.get() / quantum;
        last_bucket = last_bucket.max(bucket);
        let slot = lanes[core].entry(bucket).or_insert('·');
        if rank(g) > rank(*slot) {
            *slot = g;
        }
    }
    let columns = ((last_bucket + 1) as usize).min(options.max_columns);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline ({quantum} cycles/column; + hit  ? miss  B broadcast  > transfer  F fill  d downgrade  x invalidate)"
    );
    if !switches.is_empty() {
        let _ = writeln!(out, "timer switches at cycles {switches:?}");
    }
    for (core, lane) in lanes.iter().enumerate() {
        let mut row = String::with_capacity(columns);
        for b in 0..columns as u64 {
            row.push(*lane.get(&b).unwrap_or(&'·'));
        }
        let truncated = if (last_bucket + 1) as usize > columns { "…" } else { "" };
        let _ = writeln!(out, "c{core:<2} {row}{truncated}");
    }
    let _ = writeln!(
        out,
        "    0{:>width$}",
        last_bucket.min(columns as u64 - 1) * quantum,
        width = columns.saturating_sub(1)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventLogProbe, SimConfig, Simulator};
    use cohort_trace::micro;
    use cohort_types::{Cycles, TimerValue};

    fn logged_run(workload: &cohort_trace::Workload, cores: usize) -> Vec<Event> {
        let config =
            SimConfig::builder(cores).timer(0, TimerValue::timed(40).unwrap()).build().unwrap();
        let mut probe = EventLogProbe::new();
        let mut sim = Simulator::with_probe(config, workload, &mut probe).unwrap();
        sim.run().unwrap();
        probe.to_vec()
    }

    #[test]
    fn renders_one_lane_per_core() {
        let events = logged_run(&micro::ping_pong(3, 2), 3);
        let art = render_timeline(&events, 3, &TimelineOptions::default());
        for core in 0..3 {
            assert!(art.contains(&format!("c{core}")), "{art}");
        }
        assert!(art.contains('F'));
        assert!(art.contains('B'));
    }

    #[test]
    fn line_filter_hides_other_lines() {
        let events = logged_run(&micro::streaming(2, 10), 2);
        let all = render_timeline(&events, 2, &TimelineOptions::default());
        let one = render_timeline(
            &events,
            2,
            &TimelineOptions { line: Some(LineAddr::new(0x1000)), ..Default::default() },
        );
        // Count glyphs in the lane rows only (the legend also contains F).
        let fills = |s: &str| {
            s.lines().filter(|l| l.starts_with('c')).map(|l| l.matches('F').count()).sum::<usize>()
        };
        assert!(fills(&one) < fills(&all));
        assert_eq!(fills(&one), 1, "exactly core 0's first line");
    }

    #[test]
    fn truncation_is_marked() {
        let events = logged_run(&micro::streaming(1, 300), 1);
        let art = render_timeline(
            &events,
            1,
            &TimelineOptions { cycles_per_column: 1, max_columns: 20, ..Default::default() },
        );
        assert!(art.contains('…'));
        let lane = art.lines().find(|l| l.starts_with("c0")).unwrap();
        assert!(lane.chars().count() <= 20 + "c0  …".chars().count());
    }

    #[test]
    fn switches_appear_in_header() {
        let config = SimConfig::builder(1).build().unwrap();
        let mut probe = EventLogProbe::new();
        let mut sim = Simulator::with_probe(config, &micro::streaming(1, 5), &mut probe).unwrap();
        sim.schedule_timer_switch(Cycles::new(10), vec![TimerValue::MSI]).unwrap();
        sim.run().unwrap();
        let art = render_timeline(&probe.to_vec(), 1, &TimelineOptions::default());
        assert!(art.contains("timer switches at cycles [10]"), "{art}");
    }

    #[test]
    fn empty_log_renders_empty_lanes() {
        let art = render_timeline(&[], 2, &TimelineOptions::default());
        assert!(art.contains("c0"));
        assert!(art.contains("c1"));
    }
}
