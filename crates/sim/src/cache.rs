//! Set-associative cache structures shared by the private L1s and the LLC.

use cohort_types::{Cycles, LineAddr, TimerValue};

use crate::CacheGeometry;

/// Stable coherence state of a line held in a private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Read permission; the shared memory (or another core) owns the line.
    Shared,
    /// Read/write permission; this cache owns the line and must supply data.
    Modified,
    /// MESI extension: sole clean copy. Read permission plus a *silent*
    /// upgrade to [`LineState::Modified`] on the first store (no bus
    /// transaction). For coherence bookkeeping the holder is the owner,
    /// exactly like Modified.
    Exclusive,
}

impl LineState {
    /// Returns `true` if the state grants write permission (a store hits):
    /// Modified outright, Exclusive via the silent upgrade.
    #[must_use]
    pub const fn is_writable(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }

    /// Returns `true` if the holder owns the line (supplies data, appears
    /// as the coherence owner): Modified or Exclusive.
    #[must_use]
    pub const fn is_owned(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }

    /// Returns `true` for the Modified state specifically.
    #[must_use]
    pub const fn is_modified(self) -> bool {
        matches!(self, LineState::Modified)
    }
}

/// Per-line payload of a private cache: coherence state plus the timer
/// anchor (the cycle the countdown counter was last loaded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Line {
    /// MSI stable state.
    pub state: LineState,
    /// Cycle at which the line was filled (counter Load asserted).
    pub anchor: Cycles,
    /// The θ value the counter loaded at fill time. The Figure-3 circuit
    /// loads the *register at Load time*; a later register re-programming
    /// (mode switch) does not alter a running countdown — except that
    /// switching the register to −1 pulls Enable low, which releases the
    /// line immediately (handled by the engine against the live register).
    pub theta: TimerValue,
    /// Latched once the countdown expired with `PendingInv` high: the
    /// hardware has committed to the hand-over, so a later θ
    /// re-programming (mode switch) cannot re-protect the line.
    pub released: bool,
}

impl L1Line {
    /// A freshly filled line (counter loaded from the register, not
    /// released).
    #[must_use]
    pub const fn filled(state: LineState, anchor: Cycles, theta: TimerValue) -> Self {
        L1Line { state, anchor, theta, released: false }
    }
}

/// A generic set-associative cache with true-LRU replacement.
///
/// Used with `ways = 1` for the paper's direct-mapped private caches and
/// `ways = 8` for the finite LLC. The payload type `T` carries whatever the
/// layer above needs per line ([`L1Line`] for the L1s, `()` for the LLC).
///
/// # Examples
///
/// ```
/// use cohort_sim::{CacheGeometry, SetAssocCache};
/// use cohort_types::LineAddr;
///
/// let geom = CacheGeometry::new(4 * 64, 64, 2)?; // 2 sets × 2 ways
/// let mut cache: SetAssocCache<u32> = SetAssocCache::new(geom);
/// assert!(cache.insert(LineAddr::new(0), 10).is_none());
/// assert!(cache.insert(LineAddr::new(2), 20).is_none()); // same set, 2nd way
/// // Third line in set 0 evicts the LRU entry (line 0).
/// let evicted = cache.insert(LineAddr::new(4), 30);
/// assert_eq!(evicted, Some((LineAddr::new(0), 10)));
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<T> {
    geometry: CacheGeometry,
    /// Per set: occupied ways ordered MRU-first.
    sets: Vec<Vec<(LineAddr, T)>>,
}

impl<T> SetAssocCache<T> {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets =
            (0..geometry.sets()).map(|_| Vec::with_capacity(geometry.ways as usize)).collect();
        SetAssocCache { geometry, sets }
    }

    /// Returns the cache geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    fn set_of(&self, line: LineAddr) -> usize {
        line.set_index(self.geometry.sets()) as usize
    }

    /// Looks up a line without touching LRU state.
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> Option<&T> {
        self.sets[self.set_of(line)].iter().find(|(l, _)| *l == line).map(|(_, t)| t)
    }

    /// Looks up a line mutably without touching LRU state.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        let set = self.set_of(line);
        self.sets[set].iter_mut().find(|(l, _)| *l == line).map(|(_, t)| t)
    }

    /// Looks up a line and promotes it to MRU.
    pub fn touch(&mut self, line: LineAddr) -> Option<&mut T> {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        let pos = ways.iter().position(|(l, _)| *l == line)?;
        let entry = ways.remove(pos);
        ways.insert(0, entry);
        Some(&mut ways[0].1)
    }

    /// Returns `true` if the line is present.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line as MRU, evicting the least-recently-used entry of a
    /// full set. Returns the evicted `(line, payload)` if any.
    ///
    /// Inserting a line that is already present replaces its payload (and
    /// promotes it) without evicting anything.
    pub fn insert(&mut self, line: LineAddr, payload: T) -> Option<(LineAddr, T)> {
        self.insert_select(line, payload, |_, _| true)
    }

    /// Like [`SetAssocCache::insert`], but prefers evicting a victim for
    /// which `evictable` returns `true`; if no way is evictable the plain
    /// LRU entry is evicted anyway (the caller must cope — an inclusive LLC
    /// uses this to avoid back-invalidating lines with active waiters when
    /// it can).
    pub fn insert_select(
        &mut self,
        line: LineAddr,
        payload: T,
        evictable: impl Fn(LineAddr, &T) -> bool,
    ) -> Option<(LineAddr, T)> {
        let set = self.set_of(line);
        let ways = self.geometry.ways as usize;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|(l, _)| *l == line) {
            let mut entry = entries.remove(pos);
            entry.1 = payload;
            entries.insert(0, entry);
            return None;
        }
        let evicted = if entries.len() == ways {
            // LRU-first among evictable ways; plain LRU as a last resort.
            let victim = entries
                .iter()
                .enumerate()
                .rev()
                .find(|(_, (l, t))| evictable(*l, t))
                .map_or(entries.len() - 1, |(i, _)| i);
            Some(entries.remove(victim))
        } else {
            None
        };
        entries.insert(0, (line, payload));
        evicted
    }

    /// Removes a line, returning its payload.
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        let set = self.set_of(line);
        let entries = &mut self.sets[set];
        let pos = entries.iter().position(|(l, _)| *l == line)?;
        Some(entries.remove(pos).1)
    }

    /// Iterates over all resident `(line, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.sets.iter().flat_map(|s| s.iter().map(|(l, t)| (*l, t)))
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no line is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(sets: u64, ways: u64) -> CacheGeometry {
        CacheGeometry::new(sets * ways * 64, 64, ways).unwrap()
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 4 sets, 1 way: lines 0 and 4 conflict.
        let mut c: SetAssocCache<u8> = SetAssocCache::new(geom(4, 1));
        assert!(c.insert(LineAddr::new(0), 1).is_none());
        assert_eq!(c.insert(LineAddr::new(4), 2), Some((LineAddr::new(0), 1)));
        assert!(c.contains(LineAddr::new(4)));
        assert!(!c.contains(LineAddr::new(0)));
    }

    #[test]
    fn lru_order_respects_touch() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(geom(1, 2));
        c.insert(LineAddr::new(0), 1);
        c.insert(LineAddr::new(1), 2);
        // Touch 0 so 1 becomes LRU.
        assert!(c.touch(LineAddr::new(0)).is_some());
        let evicted = c.insert(LineAddr::new(2), 3).unwrap();
        assert_eq!(evicted.0, LineAddr::new(1));
    }

    #[test]
    fn reinsert_replaces_payload_without_eviction() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(geom(1, 2));
        c.insert(LineAddr::new(0), 1);
        c.insert(LineAddr::new(1), 2);
        assert!(c.insert(LineAddr::new(0), 9).is_none());
        assert_eq!(c.peek(LineAddr::new(0)), Some(&9));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_select_prefers_evictable_victims() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(geom(1, 2));
        c.insert(LineAddr::new(0), 1);
        c.insert(LineAddr::new(1), 2);
        // Line 1 is LRU? No: 1 inserted last → MRU; 0 is LRU. Protect 0.
        let evicted = c.insert_select(LineAddr::new(2), 3, |l, _| l != LineAddr::new(0));
        assert_eq!(evicted, Some((LineAddr::new(1), 2)));
        assert!(c.contains(LineAddr::new(0)));
    }

    #[test]
    fn insert_select_falls_back_to_lru_when_nothing_evictable() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(geom(1, 2));
        c.insert(LineAddr::new(0), 1);
        c.insert(LineAddr::new(1), 2);
        let evicted = c.insert_select(LineAddr::new(2), 3, |_, _| false);
        assert_eq!(evicted, Some((LineAddr::new(0), 1)), "LRU evicted as last resort");
    }

    #[test]
    fn remove_and_len() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(geom(2, 2));
        assert!(c.is_empty());
        c.insert(LineAddr::new(0), 1);
        c.insert(LineAddr::new(1), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.remove(LineAddr::new(0)), Some(1));
        assert_eq!(c.remove(LineAddr::new(0)), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(geom(1, 2));
        c.insert(LineAddr::new(0), 1);
        c.insert(LineAddr::new(1), 2);
        let _ = c.peek(LineAddr::new(0));
        // 0 is still LRU: inserting evicts it.
        let evicted = c.insert(LineAddr::new(2), 3).unwrap();
        assert_eq!(evicted.0, LineAddr::new(0));
    }

    #[test]
    fn iter_covers_all_sets() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(geom(4, 1));
        c.insert(LineAddr::new(0), 1);
        c.insert(LineAddr::new(3), 2);
        let mut lines: Vec<u64> = c.iter().map(|(l, _)| l.raw()).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 3]);
    }
}
