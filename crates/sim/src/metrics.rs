//! [`MetricsProbe`]: distributional run metrics built on the probe API.
//!
//! The paper's claims are distributional — per-request latencies against
//! the Eq. 1 bound (Figure 5), bus interference under heterogeneous θ,
//! mode-switch degradation — while [`SimStats`] only carries scalars. This
//! probe derives, in one streaming pass:
//!
//! - per-core **log2-bucketed latency histograms** (p50 / p99 / max /
//!   mean) over every completed request, hits included;
//! - the **Eq. 1 analytical bound** per core (mirrored from
//!   `cohort_analysis::wcl_miss`; the analysis crate sits *above* the
//!   simulator in the dependency DAG, so the three-line formula is
//!   restated here) and whether the observed maximum respects it;
//! - per-core **bus occupancy** and tenure counts, plus arbitration
//!   grant/stall counters per arbiter slot;
//! - per-core **timer occupancy**: how many timer-protected lines the
//!   core holds over time (cycle-weighted average and peak);
//! - the **mode-switch** count.
//!
//! # Examples
//!
//! ```
//! use cohort_sim::{MetricsProbe, SimConfig, Simulator};
//! use cohort_trace::micro;
//! use cohort_types::TimerValue;
//!
//! let config = SimConfig::builder(2).timer(0, TimerValue::timed(30)?).build()?;
//! let mut probe = MetricsProbe::new();
//! let mut sim = Simulator::with_probe(config, &micro::ping_pong(2, 6), &mut probe)?;
//! let stats = sim.run()?;
//! let report = probe.report();
//! assert_eq!(report.cores[0].latency.count(), stats.cores[0].accesses());
//! assert!(report.bound_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeSet;

use cohort_types::{Cycles, LineAddr, TimerValue};

use crate::event::EventKind;
use crate::probe::{BusTenure, SimProbe};
use crate::{ArbiterKind, DataPath, SimConfig, SimStats};

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i)`, up to the full `u64` range.
const BUCKETS: usize = 65;

/// A log2-bucketed latency histogram.
///
/// Recording is O(1) (a `leading_zeros` and an increment); quantiles are
/// read from the bucket boundaries and clamped to the observed maximum,
/// so a reported p99 never exceeds the true worst case.
///
/// # Examples
///
/// ```
/// use cohort_sim::LatencyHistogram;
/// use cohort_types::Cycles;
///
/// let mut h = LatencyHistogram::new();
/// for v in [1, 1, 1, 200] {
///     h.record(Cycles::new(v));
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.p50().get(), 1);
/// assert_eq!(h.max().get(), 200);
/// assert!(h.p99() <= h.max());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: vec![0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The smallest value a bucket can hold.
    fn bucket_lower(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1 << (index - 1)
        }
    }

    /// The largest value a bucket can hold.
    fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index == 64 {
            u64::MAX
        } else {
            (1 << index) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: Cycles) {
        let v = value.get();
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest recorded observation (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> Cycles {
        Cycles::new(self.max)
    }

    /// Arithmetic mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper estimate of the `q`-quantile (`q` in `[0, 1]`): the upper
    /// boundary of the bucket containing it, clamped to the exact maximum.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Cycles {
        if self.count == 0 {
            return Cycles::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Cycles::new(Self::bucket_upper(index).min(self.max));
            }
        }
        Cycles::new(self.max)
    }

    /// The median (upper-bucket estimate, clamped to the maximum).
    #[must_use]
    pub fn p50(&self) -> Cycles {
        self.quantile(0.50)
    }

    /// The 99th percentile (upper-bucket estimate, clamped to the maximum).
    #[must_use]
    pub fn p99(&self) -> Cycles {
        self.quantile(0.99)
    }

    /// Iterates over the non-empty buckets as `(lower, upper, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_lower(i), Self::bucket_upper(i), n))
    }
}

/// Per-core slice of a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoreMetrics {
    /// Latency of every completed request (hits and misses).
    pub latency: LatencyHistogram,
    /// The Eq. 1 analytical worst-case miss latency, when the configuration
    /// is analysable (RROF arbitration, direct data path, one MSHR);
    /// `None` otherwise. Computed from the *initial* timer registers —
    /// after a mode switch it describes the pre-switch mode.
    pub wcl_bound: Option<u64>,
    /// Bus cycles of tenures granted to this core.
    pub bus_busy: u64,
    /// Number of bus tenures granted to this core.
    pub tenures: u64,
    /// Arbitration rounds this core won.
    pub grants: u64,
    /// Arbitration rounds this core lost while holding a ready candidate
    /// (its arbiter slot was passed over).
    pub stalls: u64,
    /// Peak number of simultaneously timer-protected lines the core held.
    pub timer_occupancy_max: u64,
    /// Cycle-weighted average number of timer-protected lines held.
    pub timer_occupancy_avg: f64,
}

impl CoreMetrics {
    /// Whether the observed worst request respects the Eq. 1 bound
    /// (vacuously true without a bound).
    #[must_use]
    pub fn bound_ok(&self) -> bool {
        self.wcl_bound.is_none_or(|b| self.latency.max().get() <= b)
    }
}

/// The final output of a [`MetricsProbe`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles the shared bus was occupied.
    pub bus_busy: u64,
    /// Number of timer-register re-programmings observed.
    pub mode_switches: u64,
    /// Per-core metrics, indexed by core.
    pub cores: Vec<CoreMetrics>,
}

impl MetricsReport {
    /// Shared-bus utilisation in `[0, 1]`.
    #[must_use]
    pub fn bus_utilisation(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bus_busy as f64 / self.cycles as f64
        }
    }

    /// Whether every core's observed worst request respects its Eq. 1
    /// bound. Only meaningful when no mode switch occurred (the bounds
    /// describe the initial mode).
    #[must_use]
    pub fn bound_ok(&self) -> bool {
        self.cores.iter().all(CoreMetrics::bound_ok)
    }

    /// Serializes the report as a JSON value (hand-built, so it works
    /// under any `serde_json` with the `Value` API).
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let mut root = serde_json::Map::new();
        root.insert("cycles".into(), serde_json::Value::from(self.cycles));
        root.insert("bus_busy".into(), serde_json::Value::from(self.bus_busy));
        root.insert("bus_utilisation".into(), serde_json::Value::from(self.bus_utilisation()));
        root.insert("mode_switches".into(), serde_json::Value::from(self.mode_switches));
        let cores: Vec<serde_json::Value> = self
            .cores
            .iter()
            .map(|core| {
                let mut c = serde_json::Map::new();
                c.insert("accesses".into(), serde_json::Value::from(core.latency.count()));
                c.insert("latency_p50".into(), serde_json::Value::from(core.latency.p50().get()));
                c.insert("latency_p99".into(), serde_json::Value::from(core.latency.p99().get()));
                c.insert("latency_max".into(), serde_json::Value::from(core.latency.max().get()));
                c.insert("latency_mean".into(), serde_json::Value::from(core.latency.mean()));
                let bound = match core.wcl_bound {
                    Some(b) => serde_json::Value::from(b),
                    None => serde_json::Value::Null,
                };
                c.insert("wcl_bound".into(), bound);
                c.insert("bound_ok".into(), serde_json::Value::from(core.bound_ok()));
                c.insert("bus_busy".into(), serde_json::Value::from(core.bus_busy));
                c.insert("tenures".into(), serde_json::Value::from(core.tenures));
                c.insert("grants".into(), serde_json::Value::from(core.grants));
                c.insert("stalls".into(), serde_json::Value::from(core.stalls));
                c.insert(
                    "timer_occupancy_max".into(),
                    serde_json::Value::from(core.timer_occupancy_max),
                );
                c.insert(
                    "timer_occupancy_avg".into(),
                    serde_json::Value::from(core.timer_occupancy_avg),
                );
                let buckets: Vec<serde_json::Value> = core
                    .latency
                    .nonzero_buckets()
                    .map(|(lo, hi, n)| {
                        let mut b = serde_json::Map::new();
                        b.insert("lo".into(), serde_json::Value::from(lo));
                        b.insert("hi".into(), serde_json::Value::from(hi));
                        b.insert("count".into(), serde_json::Value::from(n));
                        serde_json::Value::Object(b)
                    })
                    .collect();
                c.insert("histogram".into(), serde_json::Value::from(buckets));
                serde_json::Value::Object(c)
            })
            .collect();
        root.insert("cores".into(), serde_json::Value::from(cores));
        serde_json::Value::Object(root)
    }
}

/// Per-core timer-occupancy tracking state.
#[derive(Debug, Clone, Default)]
struct Occupancy {
    live: BTreeSet<LineAddr>,
    last_update: u64,
    weighted: u128,
    max: u64,
}

impl Occupancy {
    /// Accumulates `live × Δt` up to `cycle` (robust to the near-sorted
    /// event stream: a slightly stale stamp contributes nothing).
    fn advance(&mut self, cycle: u64) {
        let dt = cycle.saturating_sub(self.last_update);
        self.weighted += u128::from(dt) * u128::from(self.live.len() as u64);
        self.last_update = self.last_update.max(cycle);
    }

    fn insert(&mut self, cycle: u64, line: LineAddr) {
        self.advance(cycle);
        self.live.insert(line);
        self.max = self.max.max(self.live.len() as u64);
    }

    fn remove(&mut self, cycle: u64, line: LineAddr) {
        self.advance(cycle);
        self.live.remove(&line);
    }

    fn clear(&mut self, cycle: u64) {
        self.advance(cycle);
        self.live.clear();
    }
}

/// The built-in metrics probe. See the [module docs](self) for what it
/// derives; call [`MetricsProbe::report`] (or
/// [`MetricsProbe::into_report`]) after the run.
#[derive(Debug, Clone, Default)]
pub struct MetricsProbe {
    hit_latency: Cycles,
    timers: Vec<TimerValue>,
    latency: Vec<LatencyHistogram>,
    wcl_bounds: Vec<Option<u64>>,
    bus_busy_per_core: Vec<u64>,
    tenures: Vec<u64>,
    grants: Vec<u64>,
    stalls: Vec<u64>,
    occupancy: Vec<Occupancy>,
    mode_switches: u64,
    cycles: u64,
    bus_busy: u64,
}

impl MetricsProbe {
    /// Creates a metrics probe (sized lazily at `on_start`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirror of `cohort_analysis::wcl_miss` (Eq. 1): the analysis crate
    /// depends on nothing below it and the simulator must not depend *up*
    /// on it, so the formula is restated here; a cross-crate test in the
    /// repro package keeps the two in lock-step.
    pub(crate) fn eq1_bound(core: usize, timers: &[TimerValue], config: &SimConfig) -> u64 {
        let latency = config.latency();
        let sw = latency.slot_width().get() + latency.memory.get();
        let n = timers.len() as u64;
        let mut bound = sw * n;
        for (j, timer) in timers.iter().enumerate() {
            if j == core {
                continue;
            }
            if let Some(theta) = timer.theta() {
                bound += theta + sw;
            }
        }
        bound
    }

    /// Whether Eq. 1 describes this configuration at all: RROF
    /// arbitration, direct cache-to-cache data, one outstanding miss per
    /// core (the assumptions of the paper's analysis).
    pub(crate) fn analysable(config: &SimConfig) -> bool {
        config.arbiter() == &ArbiterKind::Rrof
            && config.data_path() == DataPath::CacheToCache
            && config.mshr_per_core() == 1
    }

    /// Finalises the metrics into a report (the probe can keep running —
    /// e.g. mid-run snapshots — but `cycles` is only final after
    /// `on_finish`).
    #[must_use]
    pub fn report(&self) -> MetricsReport {
        let cores = self
            .latency
            .iter()
            .enumerate()
            .map(|(i, latency)| {
                let occ = &self.occupancy[i];
                let avg =
                    if self.cycles == 0 { 0.0 } else { occ.weighted as f64 / self.cycles as f64 };
                CoreMetrics {
                    latency: latency.clone(),
                    wcl_bound: self.wcl_bounds[i],
                    bus_busy: self.bus_busy_per_core[i],
                    tenures: self.tenures[i],
                    grants: self.grants[i],
                    stalls: self.stalls[i],
                    timer_occupancy_max: occ.max,
                    timer_occupancy_avg: avg,
                }
            })
            .collect();
        MetricsReport {
            cycles: self.cycles,
            bus_busy: self.bus_busy,
            mode_switches: self.mode_switches,
            cores,
        }
    }

    /// Consumes the probe, returning the final report.
    #[must_use]
    pub fn into_report(self) -> MetricsReport {
        self.report()
    }
}

impl SimProbe for MetricsProbe {
    fn on_start(&mut self, config: &SimConfig) {
        let n = config.cores();
        self.hit_latency = config.latency().hit;
        self.timers = config.timers().to_vec();
        self.latency = vec![LatencyHistogram::new(); n];
        self.wcl_bounds = (0..n)
            .map(|i| Self::analysable(config).then(|| Self::eq1_bound(i, config.timers(), config)))
            .collect();
        self.bus_busy_per_core = vec![0; n];
        self.tenures = vec![0; n];
        self.grants = vec![0; n];
        self.stalls = vec![0; n];
        self.occupancy = vec![Occupancy::default(); n];
    }

    fn on_event(&mut self, cycle: Cycles, kind: &EventKind) {
        let at = cycle.get();
        match kind {
            EventKind::Hit { core, .. } => self.latency[*core].record(self.hit_latency),
            EventKind::Fill { core, line, latency, .. } => {
                self.latency[*core].record(*latency);
                if self.timers[*core].is_timed() {
                    self.occupancy[*core].insert(at, *line);
                }
            }
            EventKind::Invalidate { core, line, .. } => {
                self.occupancy[*core].remove(at, *line);
            }
            EventKind::TimerSwitch { timers } => {
                self.mode_switches += 1;
                for (core, timer) in timers.iter().enumerate() {
                    // Writing −1 pulls Enable low: held lines lose their
                    // protection immediately. Timed-to-timed switches keep
                    // the per-line θ loaded at fill time.
                    if timer.is_msi() && self.timers[core].is_timed() {
                        self.occupancy[core].clear(at);
                    }
                }
                self.timers.clone_from(timers);
            }
            _ => {}
        }
    }

    fn on_bus_tenure(&mut self, tenure: &BusTenure) {
        let duration = tenure.duration().get();
        self.bus_busy_per_core[tenure.core] += duration;
        self.tenures[tenure.core] += 1;
        self.bus_busy += duration;
    }

    fn on_arbitration(&mut self, _cycle: Cycles, granted: usize, stalled: &[usize]) {
        self.grants[granted] += 1;
        for &core in stalled {
            self.stalls[core] += 1;
        }
    }

    fn on_finish(&mut self, stats: &SimStats) {
        self.cycles = stats.cycles.get();
        for occ in &mut self.occupancy {
            occ.advance(self.cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_the_u64_range() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 64);
        for i in 1..BUCKETS {
            assert!(LatencyHistogram::bucket_lower(i) <= LatencyHistogram::bucket_upper(i));
            assert_eq!(
                LatencyHistogram::bucket_index(LatencyHistogram::bucket_lower(i)),
                i,
                "lower bound of bucket {i} maps back"
            );
        }
    }

    #[test]
    fn histogram_quantiles_clamp_to_observed_max() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(Cycles::new(54));
        }
        h.record(Cycles::new(216));
        // 216's bucket upper bound is 255, but the observed max is 216:
        // a reported p99/p100 must never exceed a true worst case.
        assert_eq!(h.quantile(1.0).get(), 216);
        assert!(h.p99().get() <= 216);
        assert_eq!(h.p50().get(), 63, "upper bound of 54's [32, 63] bucket");
        assert_eq!(h.count(), 101);
    }

    #[test]
    fn histogram_handles_empty_and_zero() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.p99(), Cycles::ZERO);
        assert_eq!(h.mean(), 0.0);
        h.record(Cycles::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p50(), Cycles::ZERO);
        assert_eq!(h.nonzero_buckets().next(), Some((0, 0, 1)));
    }

    #[test]
    fn occupancy_integral_is_cycle_weighted() {
        let mut occ = Occupancy::default();
        occ.insert(10, LineAddr::new(1)); // live=1 from cycle 10
        occ.insert(20, LineAddr::new(2)); // live=2 from cycle 20
        occ.remove(30, LineAddr::new(1)); // live=1 from cycle 30
        occ.advance(40);
        // 10 cycles at 1 + 10 cycles at 2 + 10 cycles at 1 = 40.
        assert_eq!(occ.weighted, 40);
        assert_eq!(occ.max, 2);
        assert_eq!(occ.live.len(), 1);
    }

    #[test]
    fn report_serializes_to_json_value() {
        let mut h = LatencyHistogram::new();
        h.record(Cycles::new(1));
        h.record(Cycles::new(100));
        let report = MetricsReport {
            cycles: 1000,
            bus_busy: 500,
            mode_switches: 1,
            cores: vec![CoreMetrics {
                latency: h,
                wcl_bound: Some(216),
                bus_busy: 500,
                tenures: 3,
                grants: 3,
                stalls: 2,
                timer_occupancy_max: 4,
                timer_occupancy_avg: 1.5,
            }],
        };
        let json = report.to_json();
        assert_eq!(json.get("cycles").and_then(serde_json::Value::as_u64), Some(1000));
        let cores = json.get("cores").and_then(|v| v.as_array()).unwrap();
        assert_eq!(cores.len(), 1);
        assert_eq!(cores[0].get("accesses").and_then(serde_json::Value::as_u64), Some(2));
        assert_eq!(cores[0].get("wcl_bound").and_then(serde_json::Value::as_u64), Some(216));
        assert_eq!(cores[0].get("histogram").and_then(|v| v.as_array()).map(Vec::len), Some(2));
        let text = serde_json::to_string(&json).unwrap();
        assert!(text.contains("bus_utilisation"));
    }
}
