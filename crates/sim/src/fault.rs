//! Deterministic fault injection for the simulator.
//!
//! A [`FaultPlan`] is an explicit, fully-determined list of [`FaultSpec`]s:
//! which fault, on which core, armed from which cycle. Plans are either
//! hand-written (micro tests) or derived from a seed with
//! [`FaultPlan::seeded`], which draws every parameter from the same
//! splitmix64 stream discipline the GA engine uses for its per-generation
//! RNGs — so a fault campaign is reproducible bit-for-bit from `(seed,
//! cores, horizon, count)` alone.
//!
//! # Determinism contract
//!
//! - A [`Simulator`](crate::Simulator) built with [`FaultPlan::empty`] is
//!   **bit-identical** to one built with no plan at all: every injection
//!   hook in the engine is gated on the plan being non-empty and the empty
//!   plan follows the exact unfaulted code paths (event log, metrics and
//!   statistics included).
//! - A non-empty plan injects each fault at the first engine step at or
//!   after its `at` cycle where the fault is applicable; the engine's event
//!   skipping considers pending activations, so injection instants do not
//!   depend on how the caller slices `run_until`.
//!
//! # Fault taxonomy
//!
//! | kind | seam | primary detector |
//! |---|---|---|
//! | [`FaultKind::BusDrop`] | arbitration grant | `WcmlGuard` latency bound |
//! | [`FaultKind::BusDuplicate`] | bus tenure | `WcmlGuard` latency bound |
//! | [`FaultKind::BusDelay`] | bus tenure | `WcmlGuard` latency bound |
//! | [`FaultKind::LineCorruption`] | L1 state | `InvariantProbe` SWMR |
//! | [`FaultKind::SpuriousEviction`] | L1 residency | `InvariantProbe` shadow divergence |
//! | [`FaultKind::TimerStuck`] | holder release | `WcmlGuard` bound / `InvariantProbe` liveness |
//! | [`FaultKind::TimerEarlyExpiry`] | holder release | `InvariantProbe` timer protection |
//! | [`FaultKind::TimerCorruption`] | θ register | `WcmlGuard` latency bound |
//! | [`FaultKind::CoreStall`] | core pipeline | `WcmlGuard` progress |

use cohort_types::{Cycles, TimerValue};

/// The splitmix64 finalizer — the same mixing (constants and xor-shift
/// distances) as `cohort-optim`'s per-generation `stream_rng`, restated
/// here because the simulator sits below the optimizer in the dependency
/// DAG. Stream `k` of a seed yields the `k`-th raw draw of a plan.
#[must_use]
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One injectable hardware/timing fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A granted broadcast is lost before any device snoops it: the bus
    /// slot is burned, nothing is enqueued, and the requester retries at a
    /// later grant (a lost coherence message on a real bus).
    BusDrop,
    /// The broadcast is replayed on the wire: the tenure that carries it
    /// occupies the bus for one extra request latency.
    BusDuplicate,
    /// The bus holds the granted tenure for `cycles` extra cycles (a
    /// jammed or glitching bus).
    BusDelay {
        /// Extra bus-busy cycles appended to the tenure.
        cycles: u64,
    },
    /// A resident Shared line's state register flips to Modified without a
    /// bus transaction — the corrupted controller believes it observed a
    /// write-granting fill, and the event stream records that belief.
    LineCorruption,
    /// A resident line silently drops out of the private cache. The global
    /// bookkeeping is updated (the hardware's directory saw the writeback
    /// wire) but no event is emitted — probes reconstructing shadow state
    /// from the event stream diverge, exactly like the model checker's
    /// `skip-evict-writeback` mutation.
    SpuriousEviction,
    /// The target core's countdown timers refuse to expire during
    /// `[at, at + cycles)`: releases that would fall inside the window are
    /// withheld until it closes.
    TimerStuck {
        /// Window length in cycles (keep well below the engine's 2 M-cycle
        /// deadlock watchdog).
        cycles: u64,
    },
    /// The target core's countdown timers read expired during
    /// `[at, at + cycles)`: a pending dispossession is served immediately
    /// instead of waiting for the θ boundary — the engine-level twin of
    /// the model checker's `ignore-timer-protection` mutation.
    TimerEarlyExpiry {
        /// Window length in cycles.
        cycles: u64,
    },
    /// The target core's θ threshold register is silently overwritten with
    /// `value` (a register bit-flip). Lines filled afterwards load the
    /// corrupted θ; no `TimerSwitch` event is emitted.
    TimerCorruption {
        /// The corrupted register contents.
        value: TimerValue,
    },
    /// The target core's pipeline freezes for `cycles` cycles (its next
    /// issue slides by that much).
    CoreStall {
        /// Stall length in cycles.
        cycles: u64,
    },
}

impl FaultKind {
    /// A stable, kebab-case identifier for reports and JSON documents.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            FaultKind::BusDrop => "bus-drop",
            FaultKind::BusDuplicate => "bus-duplicate",
            FaultKind::BusDelay { .. } => "bus-delay",
            FaultKind::LineCorruption => "line-corruption",
            FaultKind::SpuriousEviction => "spurious-eviction",
            FaultKind::TimerStuck { .. } => "timer-stuck",
            FaultKind::TimerEarlyExpiry { .. } => "timer-early-expiry",
            FaultKind::TimerCorruption { .. } => "timer-corruption",
            FaultKind::CoreStall { .. } => "core-stall",
        }
    }
}

/// One scheduled fault: a kind, a target core and an arming cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// The core the fault targets (bus faults fire on this core's grants,
    /// timer/cache/core faults act on its private state).
    pub core: usize,
    /// The cycle from which the fault is armed. It fires at the first
    /// applicable opportunity at or after this instant.
    pub at: Cycles,
}

/// A deterministic schedule of faults for one simulation run.
///
/// # Examples
///
/// ```
/// use cohort_sim::{FaultKind, FaultPlan, FaultSpec};
/// use cohort_types::Cycles;
///
/// let plan = FaultPlan::new(vec![FaultSpec {
///     kind: FaultKind::BusDelay { cycles: 3000 },
///     core: 1,
///     at: Cycles::new(500),
/// }]);
/// assert_eq!(plan.specs().len(), 1);
/// assert!(FaultPlan::empty().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    seed: Option<u64>,
}

impl FaultPlan {
    /// The empty plan — a run with it is bit-identical to a fault-free run.
    #[must_use]
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// A plan with an explicit fault list.
    #[must_use]
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        FaultPlan { specs, seed: None }
    }

    /// Derives a `count`-fault plan from `seed`: the `k`-th fault's kind,
    /// target core, arming cycle (in `[1, horizon]`) and magnitude all come
    /// from splitmix64 streams of the seed, mirroring the GA engine's RNG
    /// discipline. Same arguments ⇒ same plan, on every host.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `horizon` is zero.
    #[must_use]
    pub fn seeded(seed: u64, cores: usize, horizon: u64, count: usize) -> Self {
        assert!(cores > 0, "a fault plan needs at least one core");
        assert!(horizon > 0, "a fault plan needs a non-empty horizon");
        let specs = (0..count)
            .map(|k| {
                let v = mix(seed, k as u64);
                let m = mix(seed, (k as u64) | (1 << 32));
                let kind = match v % 9 {
                    0 => FaultKind::BusDrop,
                    1 => FaultKind::BusDuplicate,
                    2 => FaultKind::BusDelay { cycles: 1_000 + m % 4_000 },
                    3 => FaultKind::LineCorruption,
                    4 => FaultKind::SpuriousEviction,
                    5 => FaultKind::TimerStuck { cycles: 2_000 + m % 8_000 },
                    6 => FaultKind::TimerEarlyExpiry { cycles: 1_000 + m % 4_000 },
                    7 => FaultKind::TimerCorruption {
                        value: TimerValue::timed(1_000 + m % 60_000)
                            .expect("derived θ is within the 16-bit range"),
                    },
                    _ => FaultKind::CoreStall { cycles: 2_000 + m % 8_000 },
                };
                FaultSpec {
                    kind,
                    core: ((v >> 8) as usize) % cores,
                    at: Cycles::new(1 + (v >> 16) % horizon),
                }
            })
            .collect();
        FaultPlan { specs, seed: Some(seed) }
    }

    /// The scheduled faults.
    #[must_use]
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// The generating seed, when the plan came from [`FaultPlan::seeded`].
    #[must_use]
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// `true` when the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// The record of one fault the engine actually applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Index of the spec in the plan.
    pub index: usize,
    /// The injected fault.
    pub kind: FaultKind,
    /// The targeted core.
    pub core: usize,
    /// The cycle the spec was armed from.
    pub scheduled: Cycles,
    /// The cycle the engine applied it (window faults record the window
    /// start; bus faults record the grant they perturbed).
    pub fired: Cycles,
}

/// Runtime fault bookkeeping carried by the simulator: the plan plus
/// per-spec fired flags and the injection log.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    fired: Vec<bool>,
    injected: Vec<InjectedFault>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let fired = vec![false; plan.specs.len()];
        FaultState { plan, fired, injected: Vec::new() }
    }

    /// `true` when every hook may take its unfaulted fast path. This is the
    /// bit-identity gate: an empty plan never perturbs the engine.
    pub(crate) fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }

    /// `true` when the plan contains faults that may desynchronize the L1
    /// arrays from the coherence bookkeeping (relaxes the engine's internal
    /// debug assertions about that agreement).
    pub(crate) fn may_corrupt_state(&self) -> bool {
        self.plan
            .specs
            .iter()
            .any(|s| matches!(s.kind, FaultKind::LineCorruption | FaultKind::SpuriousEviction))
    }

    fn record(&mut self, index: usize, now: Cycles) {
        self.fired[index] = true;
        let spec = self.plan.specs[index];
        self.injected.push(InjectedFault {
            index,
            kind: spec.kind,
            core: spec.core,
            scheduled: spec.at,
            fired: now,
        });
    }

    /// The earliest arming instant of a not-yet-fired fault, for the
    /// engine's next-event skipping (so injections do not depend on how a
    /// caller slices `run_until`).
    pub(crate) fn next_activation(&self) -> Option<Cycles> {
        self.plan
            .specs
            .iter()
            .zip(&self.fired)
            .filter(|(_, &fired)| !fired)
            .map(|(s, _)| s.at)
            .min()
    }

    /// `true` when some unfired step fault is armed at or before `now`.
    /// The legacy loop attempts these at every instant it visits, so the
    /// event engine must attempt them at every instant the legacy scan
    /// would visit.
    pub(crate) fn has_due_step_fault(&self, now: Cycles) -> bool {
        self.plan.specs.iter().zip(&self.fired).any(|(s, &fired)| {
            !fired
                && s.at <= now
                && !matches!(
                    s.kind,
                    FaultKind::BusDrop | FaultKind::BusDuplicate | FaultKind::BusDelay { .. }
                )
        })
    }

    /// Armed, unfired faults the engine applies from its step loop
    /// (everything except the bus faults, which fire at grant time).
    pub(crate) fn due_step_faults(&self, now: Cycles) -> Vec<(usize, FaultSpec)> {
        self.plan
            .specs
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                !self.fired[*i]
                    && s.at <= now
                    && !matches!(
                        s.kind,
                        FaultKind::BusDrop | FaultKind::BusDuplicate | FaultKind::BusDelay { .. }
                    )
            })
            .map(|(i, s)| (i, *s))
            .collect()
    }

    /// Marks a step fault as applied at `now`.
    pub(crate) fn mark_fired(&mut self, index: usize, now: Cycles) {
        self.record(index, now);
    }

    /// Consumes an armed [`FaultKind::BusDrop`] for a grant of `core` at
    /// `now`, if any.
    pub(crate) fn take_bus_drop(&mut self, now: Cycles, core: usize) -> bool {
        let hit = self.plan.specs.iter().enumerate().find(|(i, s)| {
            !self.fired[*i] && s.core == core && s.at <= now && matches!(s.kind, FaultKind::BusDrop)
        });
        if let Some((i, _)) = hit {
            self.record(i, now);
            true
        } else {
            false
        }
    }

    /// Consumes armed [`FaultKind::BusDelay`]/[`FaultKind::BusDuplicate`]
    /// faults for a tenure granted to `core` at `now`, returning the extra
    /// bus-busy cycles they add (`request_latency` per duplicate).
    pub(crate) fn take_bus_extra(
        &mut self,
        now: Cycles,
        core: usize,
        request_latency: Cycles,
    ) -> Cycles {
        let mut extra = Cycles::ZERO;
        for i in 0..self.plan.specs.len() {
            if self.fired[i] {
                continue;
            }
            let s = self.plan.specs[i];
            if s.core != core || s.at > now {
                continue;
            }
            match s.kind {
                FaultKind::BusDelay { cycles } => {
                    extra += Cycles::new(cycles);
                    self.record(i, now);
                }
                FaultKind::BusDuplicate => {
                    extra += request_latency;
                    self.record(i, now);
                }
                _ => {}
            }
        }
        extra
    }

    /// Applies the active timer-window faults of `holder` to a computed
    /// release instant. Pure in its inputs (the engine calls it from hit
    /// classification, candidate readiness, next-event scheduling and
    /// switch latching alike, and all must agree).
    pub(crate) fn adjust_release(&self, holder: usize, normal: Cycles, pending: Cycles) -> Cycles {
        let mut release = normal;
        for s in &self.plan.specs {
            if s.core != holder {
                continue;
            }
            match s.kind {
                FaultKind::TimerStuck { cycles } => {
                    let end = s.at + Cycles::new(cycles);
                    if release >= s.at && release < end {
                        release = end;
                    }
                }
                FaultKind::TimerEarlyExpiry { cycles } => {
                    let end = s.at + Cycles::new(cycles);
                    let forced = pending.max(s.at);
                    if release > s.at && forced < end && forced < release {
                        release = forced;
                    }
                }
                _ => {}
            }
        }
        release
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::seeded(42, 4, 10_000, 8);
        let b = FaultPlan::seeded(42, 4, 10_000, 8);
        let c = FaultPlan::seeded(43, 4, 10_000, 8);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.specs().len(), 8);
        assert_eq!(a.seed(), Some(42));
        for s in a.specs() {
            assert!(s.core < 4);
            assert!(s.at.get() >= 1 && s.at.get() <= 10_000);
        }
    }

    #[test]
    fn mix_matches_the_ga_stream_discipline() {
        // Fixed point of the splitmix64 finalizer documented in
        // `cohort-optim`: identical constants and shift distances mean the
        // same (seed, stream) pair always produces the same draw.
        assert_eq!(mix(0, 0), 0);
        assert_ne!(mix(1, 0), mix(1, 1));
        assert_eq!(mix(7, 3), mix(7, 3));
    }

    #[test]
    fn stuck_window_defers_release_to_window_end() {
        let plan = FaultPlan::new(vec![FaultSpec {
            kind: FaultKind::TimerStuck { cycles: 100 },
            core: 0,
            at: Cycles::new(50),
        }]);
        let state = FaultState::new(plan);
        // A release inside [50, 150) slides to 150.
        assert_eq!(state.adjust_release(0, Cycles::new(80), Cycles::new(70)).get(), 150);
        // Releases outside the window, or of another core, are untouched.
        assert_eq!(state.adjust_release(0, Cycles::new(20), Cycles::new(10)).get(), 20);
        assert_eq!(state.adjust_release(0, Cycles::new(200), Cycles::new(190)).get(), 200);
        assert_eq!(state.adjust_release(1, Cycles::new(80), Cycles::new(70)).get(), 80);
    }

    #[test]
    fn early_expiry_forces_release_at_pending() {
        let plan = FaultPlan::new(vec![FaultSpec {
            kind: FaultKind::TimerEarlyExpiry { cycles: 100 },
            core: 2,
            at: Cycles::new(50),
        }]);
        let state = FaultState::new(plan);
        // A protected release at 120 with a request pending since 60 is
        // forced down to the pending instant.
        assert_eq!(state.adjust_release(2, Cycles::new(120), Cycles::new(60)).get(), 60);
        // Pending before the window: forced to the window start.
        assert_eq!(state.adjust_release(2, Cycles::new(120), Cycles::new(10)).get(), 50);
        // Releases already due before the window stay put.
        assert_eq!(state.adjust_release(2, Cycles::new(30), Cycles::new(10)).get(), 30);
    }

    #[test]
    fn bus_faults_are_consumed_once() {
        let plan = FaultPlan::new(vec![
            FaultSpec { kind: FaultKind::BusDrop, core: 1, at: Cycles::new(10) },
            FaultSpec { kind: FaultKind::BusDelay { cycles: 500 }, core: 1, at: Cycles::new(10) },
        ]);
        let mut state = FaultState::new(plan);
        assert!(!state.take_bus_drop(Cycles::new(5), 1), "not armed yet");
        assert!(!state.take_bus_drop(Cycles::new(20), 0), "wrong core");
        assert!(state.take_bus_drop(Cycles::new(20), 1));
        assert!(!state.take_bus_drop(Cycles::new(30), 1), "one-shot");
        let extra = state.take_bus_extra(Cycles::new(20), 1, Cycles::new(4));
        assert_eq!(extra.get(), 500);
        assert_eq!(state.take_bus_extra(Cycles::new(30), 1, Cycles::new(4)), Cycles::ZERO);
        assert_eq!(state.injected().len(), 2);
        assert!(state.next_activation().is_none());
    }
}
