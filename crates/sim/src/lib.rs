//! Cycle-accurate cache-system simulator with heterogeneous
//! (time-based / MSI) coherence — the [Octopus] substitute of the CoHoRT
//! reproduction.
//!
//! The simulator models the system of the paper's §II and §VIII:
//!
//! - trace-driven cores with non-blocking private caches
//!   (hits-over-misses, configurable MSHRs);
//! - 16 KiB direct-mapped private L1s with 64 B lines;
//! - an inclusive shared LLC, either *perfect* (the paper's headline
//!   configuration) or *finite* (8-way LRU with back-invalidation and a
//!   fixed-latency main memory — the footnote-1 configuration);
//! - a shared snooping bus with pluggable arbitration
//!   ([`ArbiterKind::Rrof`], plain round-robin, PENDULUM-style TDM, FCFS);
//! - CoHoRT's per-core **timer threshold registers**: θ ≥ 0 selects
//!   time-based coherence, the special θ = −1 ([`TimerValue::Msi`]) reduces
//!   the core to standard MSI snooping — both classes coexist in one
//!   coherent system;
//! - run-time re-programming of the timer registers
//!   ([`Simulator::schedule_timer_switch`]), the hardware half of the
//!   paper's mode-switch mechanism.
//!
//! [Octopus]: https://doi.org/10.1109/LCA.2024.3355872
//! [`TimerValue::Msi`]: cohort_types::TimerValue::Msi
//!
//! # Examples
//!
//! A heterogeneous quad-core: two timed cores, two MSI cores, all coherent.
//!
//! ```
//! use cohort_sim::{SimConfig, Simulator};
//! use cohort_trace::micro;
//! use cohort_types::TimerValue;
//!
//! let config = SimConfig::builder(4)
//!     .timer(0, TimerValue::timed(100)?)
//!     .timer(1, TimerValue::timed(20)?)
//!     .timer(2, TimerValue::MSI)
//!     .timer(3, TimerValue::MSI)
//!     .build()?;
//! let workload = micro::ping_pong(4, 8);
//! let mut sim = Simulator::new(config, &workload)?;
//! let stats = sim.run()?;
//! assert!(stats.cores.iter().all(|c| c.accesses() == 8));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod cache;
mod chrome_trace;
mod coherence;
mod config;
mod core_model;
mod engine;
mod event;
mod fault;
mod invariant;
mod metrics;
mod probe;
mod sched;
mod stats;
mod timeline;
mod timer;
mod watchdog;

pub use arbiter::{Arbiter, Candidate, CandidateKind};
pub use cache::{L1Line, LineState, SetAssocCache};
pub use chrome_trace::ChromeTraceProbe;
pub use coherence::{CoherenceMap, LineCoh, Owner, ReqKind, Waiter};
pub use config::{
    ArbiterKind, CacheGeometry, DataPath, LlcModel, ProtocolFlavor, SimConfig, SimConfigBuilder,
};
pub use engine::{SimBuilder, Simulator};
pub use event::{Event, EventKind, EventLogProbe, InvalidateCause};
pub use fault::{FaultKind, FaultPlan, FaultSpec, InjectedFault};
pub use invariant::{InvariantKind, InvariantProbe, InvariantViolation};
pub use metrics::{CoreMetrics, LatencyHistogram, MetricsProbe, MetricsReport};
pub use probe::{BusTenure, NoProbe, SimProbe, TenureKind};
pub use sched::{
    compare_engines, diff_event_logs, CycleRoundEngine, Engine, EngineComparison, EngineDivergence,
    EngineKind, EventDrivenEngine,
};
pub use stats::{CoreStats, SimStats};
pub use timeline::{render_timeline, TimelineOptions};
pub use timer::{release_time, CountdownCounter};
pub use watchdog::{WcmlGuard, WcmlViolation, WcmlViolationKind};
