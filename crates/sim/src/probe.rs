//! The streaming instrumentation API: [`SimProbe`] and its combinators.
//!
//! The engine is generic over one probe ([`Simulator`] defaults to
//! [`NoProbe`]): every observable occurrence — protocol events, bus
//! tenures, arbitration decisions, run completion — is pushed through the
//! probe's callbacks as it happens, instead of being accumulated in an
//! all-or-nothing in-memory log. Probes compose structurally: a tuple of
//! probes is a probe that fans every callback out to its elements, so a
//! run can collect metrics *and* a Chrome trace in one pass.
//!
//! Zero cost when absent: [`SimProbe::ACTIVE`] is an associated `const`,
//! and the engine wraps every callback (including the construction of its
//! arguments) in `if P::ACTIVE { … }`. For [`NoProbe`] that constant is
//! `false`, the branch is statically dead and the instrumented hot path
//! monomorphises to exactly the uninstrumented one.
//!
//! [`Simulator`]: crate::Simulator
//!
//! # Examples
//!
//! Counting protocol events with a custom probe:
//!
//! ```
//! use cohort_sim::{EventKind, SimConfig, SimProbe, Simulator};
//! use cohort_trace::micro;
//! use cohort_types::Cycles;
//!
//! #[derive(Default)]
//! struct HitCounter(u64);
//!
//! impl SimProbe for HitCounter {
//!     fn on_event(&mut self, _cycle: Cycles, kind: &EventKind) {
//!         if matches!(kind, EventKind::Hit { .. }) {
//!             self.0 += 1;
//!         }
//!     }
//! }
//!
//! let config = SimConfig::builder(2).build()?;
//! let mut probe = HitCounter::default();
//! let mut sim = Simulator::with_probe(config, &micro::ping_pong(2, 4), &mut probe)?;
//! let stats = sim.run()?;
//! assert_eq!(probe.0, stats.total_hits());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use cohort_types::{Cycles, LineAddr};

use crate::event::EventKind;
use crate::{SimConfig, SimStats};

/// What a bus tenure moved: a bare request broadcast, a data transfer, or
/// a broadcast with the data response fused into the same tenure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenureKind {
    /// A request broadcast occupying the bus for the request latency; the
    /// data response follows in a later tenure.
    Broadcast,
    /// A data transfer from `from` (`None` = the shared memory / LLC).
    Transfer {
        /// The supplying core, or `None` for the shared memory.
        from: Option<usize>,
    },
    /// A broadcast whose data response was fused into the same tenure
    /// (the request was immediately serviceable at the snoop instant).
    Fused {
        /// The supplying core, or `None` for the shared memory.
        from: Option<usize>,
    },
}

impl TenureKind {
    /// The supplying core of the data movement, if any.
    #[must_use]
    pub fn from_core(self) -> Option<usize> {
        match self {
            TenureKind::Broadcast => None,
            TenureKind::Transfer { from } | TenureKind::Fused { from } => from,
        }
    }
}

/// One contiguous occupancy of the shared bus, as granted by the arbiter.
///
/// Tenures never overlap (the bus carries one transaction at a time), so a
/// probe can reconstruct the full bus schedule — and per-core bus shares —
/// from this stream alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTenure {
    /// The core the arbiter granted the bus to.
    pub core: usize,
    /// The cache line the tenure concerns.
    pub line: LineAddr,
    /// First cycle of the tenure.
    pub start: Cycles,
    /// First cycle after the tenure (`end - start` is the occupancy).
    pub end: Cycles,
    /// What the tenure moved.
    pub kind: TenureKind,
}

impl BusTenure {
    /// Bus cycles the tenure occupies.
    #[must_use]
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

/// A streaming observer of one simulation run.
///
/// All methods default to no-ops, so a probe implements only what it needs.
/// The engine invokes the callbacks in simulation order; cycle stamps are
/// *nearly* sorted (a fused tenure stamps its data-transfer start a few
/// cycles ahead of the grant instant), exactly like the historical event
/// log — see [`EventLogProbe`](crate::EventLogProbe) for a probe that
/// re-sorts them.
pub trait SimProbe {
    /// Whether the engine should invoke this probe at all. The engine
    /// guards every callback — including the construction of its
    /// arguments — with this constant, so an inactive probe costs nothing.
    const ACTIVE: bool = true;

    /// The run is about to start under `config`.
    fn on_start(&mut self, config: &SimConfig) {
        let _ = config;
    }

    /// A protocol event occurred at `cycle`.
    fn on_event(&mut self, cycle: Cycles, kind: &EventKind) {
        let _ = (cycle, kind);
    }

    /// The arbiter granted the bus for one tenure.
    fn on_bus_tenure(&mut self, tenure: &BusTenure) {
        let _ = tenure;
    }

    /// The arbiter granted `granted` at `cycle` while the cores in
    /// `stalled` also held ready candidates (and therefore wait at least
    /// one more tenure).
    fn on_arbitration(&mut self, cycle: Cycles, granted: usize, stalled: &[usize]) {
        let _ = (cycle, granted, stalled);
    }

    /// The run completed; `stats` is final.
    fn on_finish(&mut self, stats: &SimStats) {
        let _ = stats;
    }
}

/// The default probe: observes nothing, costs nothing.
///
/// `NoProbe::ACTIVE` is `false`, so the engine's instrumentation branches
/// are statically eliminated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl SimProbe for NoProbe {
    const ACTIVE: bool = false;
}

/// A mutable reference to a probe is itself a probe, so a caller can keep
/// ownership of the probe while the simulator runs.
impl<P: SimProbe + ?Sized> SimProbe for &mut P {
    const ACTIVE: bool = true;

    fn on_start(&mut self, config: &SimConfig) {
        (**self).on_start(config);
    }

    fn on_event(&mut self, cycle: Cycles, kind: &EventKind) {
        (**self).on_event(cycle, kind);
    }

    fn on_bus_tenure(&mut self, tenure: &BusTenure) {
        (**self).on_bus_tenure(tenure);
    }

    fn on_arbitration(&mut self, cycle: Cycles, granted: usize, stalled: &[usize]) {
        (**self).on_arbitration(cycle, granted, stalled);
    }

    fn on_finish(&mut self, stats: &SimStats) {
        (**self).on_finish(stats);
    }
}

macro_rules! impl_probe_tuple {
    ($($name:ident : $idx:tt),+) => {
        /// A tuple of probes is a probe stack: every callback fans out to
        /// each element in order.
        impl<$($name: SimProbe),+> SimProbe for ($($name,)+) {
            const ACTIVE: bool = $($name::ACTIVE)||+;

            fn on_start(&mut self, config: &SimConfig) {
                $(self.$idx.on_start(config);)+
            }

            fn on_event(&mut self, cycle: Cycles, kind: &EventKind) {
                $(self.$idx.on_event(cycle, kind);)+
            }

            fn on_bus_tenure(&mut self, tenure: &BusTenure) {
                $(self.$idx.on_bus_tenure(tenure);)+
            }

            fn on_arbitration(&mut self, cycle: Cycles, granted: usize, stalled: &[usize]) {
                $(self.$idx.on_arbitration(cycle, granted, stalled);)+
            }

            fn on_finish(&mut self, stats: &SimStats) {
                $(self.$idx.on_finish(stats);)+
            }
        }
    };
}

impl_probe_tuple!(A: 0, B: 1);
impl_probe_tuple!(A: 0, B: 1, C: 2);
impl_probe_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        events: u64,
        tenures: u64,
        grants: u64,
        started: bool,
        finished: bool,
    }

    impl SimProbe for Counter {
        fn on_start(&mut self, _config: &SimConfig) {
            self.started = true;
        }

        fn on_event(&mut self, _cycle: Cycles, _kind: &EventKind) {
            self.events += 1;
        }

        fn on_bus_tenure(&mut self, _tenure: &BusTenure) {
            self.tenures += 1;
        }

        fn on_arbitration(&mut self, _cycle: Cycles, _granted: usize, _stalled: &[usize]) {
            self.grants += 1;
        }

        fn on_finish(&mut self, _stats: &SimStats) {
            self.finished = true;
        }
    }

    #[test]
    fn no_probe_is_statically_inactive() {
        const { assert!(!NoProbe::ACTIVE) };
        const { assert!(!<(NoProbe, NoProbe)>::ACTIVE) };
        const { assert!(<(NoProbe, Counter)>::ACTIVE) };
        const { assert!(<(Counter, NoProbe, NoProbe)>::ACTIVE) };
    }

    #[test]
    fn tuples_fan_out_to_every_element() {
        let mut stack = (Counter::default(), Counter::default());
        let kind = EventKind::Hit { core: 0, line: LineAddr::new(1) };
        stack.on_event(Cycles::ZERO, &kind);
        let tenure = BusTenure {
            core: 0,
            line: LineAddr::new(1),
            start: Cycles::ZERO,
            end: Cycles::new(4),
            kind: TenureKind::Broadcast,
        };
        stack.on_bus_tenure(&tenure);
        stack.on_arbitration(Cycles::ZERO, 0, &[1]);
        assert_eq!(stack.0.events, 1);
        assert_eq!(stack.1.events, 1);
        assert_eq!(stack.0.tenures, 1);
        assert_eq!(stack.1.grants, 1);
    }

    #[test]
    fn tenure_duration_and_source() {
        let tenure = BusTenure {
            core: 2,
            line: LineAddr::new(9),
            start: Cycles::new(10),
            end: Cycles::new(64),
            kind: TenureKind::Fused { from: Some(1) },
        };
        assert_eq!(tenure.duration().get(), 54);
        assert_eq!(tenure.kind.from_core(), Some(1));
        assert_eq!(TenureKind::Broadcast.from_core(), None);
        assert_eq!(TenureKind::Transfer { from: None }.from_core(), None);
    }
}
