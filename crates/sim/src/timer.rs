//! Behavioural model of the per-line countdown-timer circuit (Figure 3).
//!
//! The hardware keeps one 16-bit countdown counter per cache line:
//!
//! - **Load** — when a core receives a line (or replenishes), the counter is
//!   loaded with the timer threshold register θ.
//! - **Enable** — the counter decrements every cycle unless θ = −1 (a
//!   comparator on the threshold register drives Enable low, modelling the
//!   reduction to standard MSI).
//! - **Count = 0 ∧ PendingInv** — the line is invalidated and handed over.
//! - **Count = 0 ∧ ¬PendingInv** — the counter replenishes to θ.
//!
//! The simulator models this lazily: instead of decrementing a counter each
//! cycle, each held line stores its fill **anchor** and the release instant
//! is computed on demand with [`release_time`]. The two formulations are
//! observationally identical (proved by the exhaustive cycle-by-cycle
//! comparison against [`CountdownCounter`] in this module's tests), and the
//! lazy form lets the engine skip idle cycles.

use cohort_types::{Cycles, TimerValue};

/// Computes the instant at which a holder releases a line.
///
/// `anchor` is the cycle the line was filled (counter loaded with θ);
/// `pending_since` is the cycle at which `PendingInv` went high (another
/// core's request was snooped, or the line was received while waiters were
/// already queued). The holder releases at the first counter expiry at or
/// after `pending_since`:
///
/// - θ = −1 (MSI): release immediately at `pending_since`;
/// - θ = 0: the counter loads expired, release at `pending_since`;
/// - θ ≥ 1: expiries occur at `anchor + k·θ` for `k = 1, 2, …` (the counter
///   replenishes whenever it expires without a pending request).
///
/// # Examples
///
/// ```
/// use cohort_sim::release_time;
/// use cohort_types::{Cycles, TimerValue};
///
/// let theta = TimerValue::timed(20)?;
/// // Request arrives 5 cycles after fill: wait for the first expiry.
/// assert_eq!(release_time(Cycles::new(100), theta, Cycles::new(105)).get(), 120);
/// // Request arrives after one replenish: wait for the second expiry.
/// assert_eq!(release_time(Cycles::new(100), theta, Cycles::new(121)).get(), 140);
/// // MSI cores release immediately.
/// assert_eq!(release_time(Cycles::new(100), TimerValue::MSI, Cycles::new(105)).get(), 105);
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[must_use]
pub fn release_time(anchor: Cycles, timer: TimerValue, pending_since: Cycles) -> Cycles {
    match timer.theta() {
        None | Some(0) => pending_since.max(anchor),
        Some(theta) => {
            let p = pending_since.get().max(anchor.get());
            let elapsed = p - anchor.get();
            // First expiry boundary at or after p; a request landing exactly
            // on a boundary is served at that boundary.
            let k = if elapsed == 0 { 1 } else { elapsed.div_ceil(theta) };
            Cycles::new(anchor.get() + k * theta)
        }
    }
}

/// Cycle-by-cycle reference model of the Figure-3 circuit, used to validate
/// [`release_time`] and exported for the hardware-facing tests.
///
/// # Examples
///
/// ```
/// use cohort_sim::CountdownCounter;
/// use cohort_types::TimerValue;
///
/// let mut counter = CountdownCounter::new(TimerValue::timed(3)?);
/// counter.load();
/// assert!(!counter.tick(false)); // count 2
/// assert!(!counter.tick(false)); // count 1
/// assert!(!counter.tick(true));  // count 0 reached *after* this tick
/// assert!(counter.tick(true));   // expired with PendingInv → invalidate
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountdownCounter {
    threshold: TimerValue,
    count: u64,
    loaded: bool,
}

impl CountdownCounter {
    /// Creates a counter wired to the given threshold register.
    #[must_use]
    pub fn new(threshold: TimerValue) -> Self {
        CountdownCounter { threshold, count: 0, loaded: false }
    }

    /// Asserts the Load signal: the counter loads θ (no-op for θ = −1,
    /// where the comparator holds Enable low and the count is irrelevant).
    pub fn load(&mut self) {
        self.count = self.threshold.theta().unwrap_or(0);
        self.loaded = true;
    }

    /// Advances one cycle with the given `PendingInv` input and returns
    /// `true` if the line must be invalidated **this cycle**.
    ///
    /// Semantics of the demultiplexer: when the count is zero at the start
    /// of a cycle, `PendingInv` selects invalidate; otherwise the counter
    /// replenishes and keeps counting. With Enable low (θ = −1), the line is
    /// invalidated exactly when `PendingInv` is high.
    pub fn tick(&mut self, pending_inv: bool) -> bool {
        debug_assert!(self.loaded, "tick before load");
        match self.threshold.theta() {
            None => pending_inv, // Enable low: MSI behaviour
            Some(theta) => {
                if self.count == 0 {
                    if pending_inv {
                        return true;
                    }
                    self.count = theta; // replenish
                }
                self.count = self.count.saturating_sub(1);
                false
            }
        }
    }

    /// Returns the current count (for inspection in tests).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timed(theta: u64) -> TimerValue {
        TimerValue::timed(theta).unwrap()
    }

    #[test]
    fn msi_releases_at_pending_instant() {
        let r = release_time(Cycles::new(10), TimerValue::MSI, Cycles::new(37));
        assert_eq!(r.get(), 37);
    }

    #[test]
    fn zero_theta_releases_immediately() {
        let r = release_time(Cycles::new(10), timed(0), Cycles::new(37));
        assert_eq!(r.get(), 37);
    }

    #[test]
    fn pending_before_fill_waits_full_period() {
        // Waiters queued before the line arrived: PendingInv is high from
        // the fill instant, so the holder keeps the line exactly θ cycles.
        let r = release_time(Cycles::new(100), timed(20), Cycles::new(40));
        assert_eq!(r.get(), 120);
    }

    #[test]
    fn pending_at_fill_instant_waits_full_period() {
        let r = release_time(Cycles::new(100), timed(20), Cycles::new(100));
        assert_eq!(r.get(), 120);
    }

    #[test]
    fn pending_on_boundary_releases_on_boundary() {
        let r = release_time(Cycles::new(100), timed(20), Cycles::new(140));
        assert_eq!(r.get(), 140);
    }

    #[test]
    fn pending_mid_period_waits_to_next_boundary() {
        assert_eq!(release_time(Cycles::new(100), timed(20), Cycles::new(101)).get(), 120);
        assert_eq!(release_time(Cycles::new(100), timed(20), Cycles::new(119)).get(), 120);
        assert_eq!(release_time(Cycles::new(100), timed(20), Cycles::new(141)).get(), 160);
    }

    #[test]
    fn release_never_exceeds_pending_plus_theta() {
        // The worst-case wait after PendingInv rises is exactly θ — the
        // property Eq. 1's third term relies on.
        for anchor in 0..50u64 {
            for theta in 1..25u64 {
                for p in anchor..anchor + 100 {
                    let r = release_time(Cycles::new(anchor), timed(theta), Cycles::new(p));
                    assert!(r.get() >= p);
                    assert!(
                        r.get() <= p + theta,
                        "anchor {anchor} θ {theta} pending {p} released {r}",
                    );
                }
            }
        }
    }

    /// Drives the reference circuit cycle-by-cycle and checks that the first
    /// invalidation cycle equals `release_time`.
    fn circuit_release(anchor: u64, theta: TimerValue, pending_since: u64) -> u64 {
        let mut counter = CountdownCounter::new(theta);
        counter.load();
        let mut t = anchor;
        loop {
            let pending = t >= pending_since;
            if counter.tick(pending) {
                return t;
            }
            t += 1;
            assert!(t < anchor + 10_000, "circuit never released");
        }
    }

    #[test]
    fn lazy_model_matches_circuit_exhaustively() {
        for theta in [1u64, 2, 3, 5, 7, 20] {
            for anchor in [0u64, 3, 10] {
                for pending in anchor..anchor + 3 * theta + 2 {
                    let lazy =
                        release_time(Cycles::new(anchor), timed(theta), Cycles::new(pending));
                    let circuit = circuit_release(anchor, timed(theta), pending);
                    assert_eq!(lazy.get(), circuit, "θ={theta} anchor={anchor} pending={pending}");
                }
            }
        }
    }

    #[test]
    fn circuit_msi_invalidate_tracks_pending() {
        let mut counter = CountdownCounter::new(TimerValue::MSI);
        counter.load();
        assert!(!counter.tick(false));
        assert!(!counter.tick(false));
        assert!(counter.tick(true), "MSI invalidates the cycle PendingInv rises");
    }

    #[test]
    fn circuit_replenishes_without_pending() {
        let mut counter = CountdownCounter::new(timed(2));
        counter.load();
        // Many cycles without a pending request: never invalidates.
        for _ in 0..20 {
            assert!(!counter.tick(false));
        }
    }
}
