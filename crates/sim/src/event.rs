//! Cycle-stamped event log (optional) used to replay the paper's
//! illustrative timelines (Figures 1 and 4) and to debug protocol behaviour.

use serde::{Deserialize, Serialize};

use cohort_types::{Cycles, LineAddr, TimerValue};

use crate::coherence::ReqKind;

/// Why a private-cache line was removed or demoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvalidateCause {
    /// Another core's GetM stole the line (after the timer released it).
    Stolen,
    /// An inclusive-LLC eviction back-invalidated the line.
    BackInvalidation,
    /// The core's own replacement policy evicted the line.
    Replacement,
}

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// An access hit in the private cache.
    Hit {
        /// Accessing core.
        core: usize,
        /// The line.
        line: LineAddr,
    },
    /// A miss was issued to the memory system.
    MissIssued {
        /// Requesting core.
        core: usize,
        /// The line.
        line: LineAddr,
        /// GetS or GetM.
        kind: ReqKind,
    },
    /// A request broadcast occupied the bus.
    Broadcast {
        /// Requesting core.
        core: usize,
        /// The line.
        line: LineAddr,
        /// GetS or GetM.
        kind: ReqKind,
    },
    /// A data transfer started.
    TransferStart {
        /// Supplying core, or `None` for the shared memory.
        from: Option<usize>,
        /// Receiving core.
        to: usize,
        /// The line.
        line: LineAddr,
    },
    /// A data transfer completed; the requester filled the line.
    Fill {
        /// Receiving core.
        core: usize,
        /// The line.
        line: LineAddr,
        /// GetS or GetM (granted state).
        kind: ReqKind,
        /// Request latency, issue to fill.
        latency: Cycles,
    },
    /// A Modified owner was demoted to Shared by a GetS.
    Downgrade {
        /// Demoted core.
        core: usize,
        /// The line.
        line: LineAddr,
    },
    /// A line left a private cache.
    Invalidate {
        /// The dispossessed core.
        core: usize,
        /// The line.
        line: LineAddr,
        /// Why.
        cause: InvalidateCause,
    },
    /// The timer registers were re-programmed (mode switch).
    TimerSwitch {
        /// The new per-core θ values.
        timers: Vec<TimerValue>,
    },
}

/// A cycle-stamped event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Cycle at which the event occurred.
    pub cycle: Cycles,
    /// What happened.
    pub kind: EventKind,
}

/// Append-only event log. When disabled, recording is a no-op so the hot
/// path pays only a branch.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    enabled: bool,
    events: Vec<Event>,
}

impl EventLog {
    /// Creates a log; `enabled = false` discards all events.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        EventLog { enabled, events: Vec::new() }
    }

    /// Records an event (no-op when disabled), keeping the log
    /// chronological. Fused transactions stamp their data-transfer start a
    /// few cycles ahead of the grant instant, so an event may arrive
    /// slightly out of order; the insertion scan is O(1) amortised because
    /// the stream is nearly sorted.
    pub fn record(&mut self, cycle: Cycles, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let mut index = self.events.len();
        while index > 0 && self.events[index - 1].cycle > cycle {
            index -= 1;
        }
        self.events.insert(index, Event { cycle, kind });
    }

    /// The recorded events in chronological order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Whether recording is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_discards() {
        let mut log = EventLog::new(false);
        log.record(Cycles::ZERO, EventKind::Hit { core: 0, line: LineAddr::new(1) });
        assert!(log.events().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = EventLog::new(true);
        log.record(Cycles::new(1), EventKind::Hit { core: 0, line: LineAddr::new(1) });
        log.record(
            Cycles::new(2),
            EventKind::Invalidate {
                core: 0,
                line: LineAddr::new(1),
                cause: InvalidateCause::Stolen,
            },
        );
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].cycle.get(), 1);
    }
}
