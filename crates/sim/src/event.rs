//! Cycle-stamped protocol events and the [`EventLogProbe`] that collects
//! them, used to replay the paper's illustrative timelines (Figures 1
//! and 4) and to debug protocol behaviour.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use cohort_types::{Cycles, LineAddr, TimerValue};

use crate::coherence::ReqKind;
use crate::probe::SimProbe;

/// Why a private-cache line was removed or demoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvalidateCause {
    /// Another core's GetM stole the line (after the timer released it).
    Stolen,
    /// An inclusive-LLC eviction back-invalidated the line.
    BackInvalidation,
    /// The core's own replacement policy evicted the line.
    Replacement,
}

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// An access hit in the private cache.
    Hit {
        /// Accessing core.
        core: usize,
        /// The line.
        line: LineAddr,
    },
    /// A miss was issued to the memory system.
    MissIssued {
        /// Requesting core.
        core: usize,
        /// The line.
        line: LineAddr,
        /// GetS or GetM.
        kind: ReqKind,
    },
    /// A request broadcast occupied the bus.
    Broadcast {
        /// Requesting core.
        core: usize,
        /// The line.
        line: LineAddr,
        /// GetS or GetM.
        kind: ReqKind,
    },
    /// A data transfer started.
    TransferStart {
        /// Supplying core, or `None` for the shared memory.
        from: Option<usize>,
        /// Receiving core.
        to: usize,
        /// The line.
        line: LineAddr,
    },
    /// A data transfer completed; the requester filled the line.
    Fill {
        /// Receiving core.
        core: usize,
        /// The line.
        line: LineAddr,
        /// GetS or GetM (granted state).
        kind: ReqKind,
        /// Request latency, issue to fill.
        latency: Cycles,
    },
    /// A Modified owner was demoted to Shared by a GetS.
    Downgrade {
        /// Demoted core.
        core: usize,
        /// The line.
        line: LineAddr,
    },
    /// A line left a private cache.
    Invalidate {
        /// The dispossessed core.
        core: usize,
        /// The line.
        line: LineAddr,
        /// Why.
        cause: InvalidateCause,
    },
    /// The timer registers were re-programmed (mode switch).
    TimerSwitch {
        /// The new per-core θ values.
        timers: Vec<TimerValue>,
    },
}

/// A cycle-stamped event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Cycle at which the event occurred.
    pub cycle: Cycles,
    /// What happened.
    pub kind: EventKind,
}

/// A [`SimProbe`] that collects the full [`Event`] stream in chronological
/// order — the probe-API successor of the engine's old built-in event log.
///
/// By default the log is unbounded; [`EventLogProbe::with_capacity`]
/// bounds it to a ring buffer that keeps the **most recent** events and
/// counts the rest as dropped, so long kernels can run with a
/// flight-recorder window instead of millions of retained events.
///
/// # Examples
///
/// ```
/// use cohort_sim::{EventKind, EventLogProbe, SimConfig, Simulator};
/// use cohort_trace::micro;
///
/// let config = SimConfig::builder(2).build()?;
/// let mut probe = EventLogProbe::new();
/// let mut sim = Simulator::with_probe(config, &micro::ping_pong(2, 4), &mut probe)?;
/// sim.run()?;
/// assert!(probe.iter().any(|e| matches!(e.kind, EventKind::Fill { .. })));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventLogProbe {
    events: VecDeque<Event>,
    capacity: Option<usize>,
    dropped: u64,
}

impl EventLogProbe {
    /// Creates an unbounded log.
    #[must_use]
    pub fn new() -> Self {
        EventLogProbe::default()
    }

    /// Creates a ring-buffered log keeping at most `capacity` events; once
    /// full, each new event drops the oldest one.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventLogProbe {
            events: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Records an event, keeping the log chronological. Fused transactions
    /// stamp their data-transfer start a few cycles ahead of the grant
    /// instant, so an event may arrive slightly out of order; the
    /// insertion scan is O(1) amortised because the stream is nearly
    /// sorted.
    pub fn record(&mut self, cycle: Cycles, kind: EventKind) {
        if self.capacity == Some(0) {
            self.dropped += 1;
            return;
        }
        if let Some(cap) = self.capacity {
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        let mut index = self.events.len();
        while index > 0 && self.events[index - 1].cycle > cycle {
            index -= 1;
        }
        self.events.insert(index, Event { cycle, kind });
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The ring capacity, or `None` for an unbounded log.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of events dropped by the ring buffer (0 when unbounded).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over the retained events in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Clones the retained events into a contiguous chronological slice
    /// (what [`render_timeline`](crate::render_timeline) consumes).
    #[must_use]
    pub fn to_vec(&self) -> Vec<Event> {
        self.events.iter().cloned().collect()
    }

    /// Consumes the probe, returning the retained events.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events.into()
    }
}

impl<'a> IntoIterator for &'a EventLogProbe {
    type Item = &'a Event;
    type IntoIter = std::collections::vec_deque::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl SimProbe for EventLogProbe {
    fn on_event(&mut self, cycle: Cycles, kind: &EventKind) {
        self.record(cycle, kind.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(core: usize) -> EventKind {
        EventKind::Hit { core, line: LineAddr::new(1) }
    }

    #[test]
    fn unbounded_log_records_in_order() {
        let mut log = EventLogProbe::new();
        log.record(Cycles::new(1), hit(0));
        log.record(
            Cycles::new(2),
            EventKind::Invalidate {
                core: 0,
                line: LineAddr::new(1),
                cause: InvalidateCause::Stolen,
            },
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.iter().next().unwrap().cycle.get(), 1);
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.capacity(), None);
    }

    #[test]
    fn near_sorted_insertion_restores_chronology() {
        let mut log = EventLogProbe::new();
        log.record(Cycles::new(10), hit(0));
        log.record(Cycles::new(4), hit(1)); // fused stamp arriving late
        log.record(Cycles::new(10), hit(2));
        let cycles: Vec<u64> = log.iter().map(|e| e.cycle.get()).collect();
        assert_eq!(cycles, [4, 10, 10]);
    }

    #[test]
    fn ring_buffer_keeps_the_most_recent_events() {
        let mut log = EventLogProbe::with_capacity(3);
        for c in 0..10 {
            log.record(Cycles::new(c), hit(c as usize));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
        let cycles: Vec<u64> = log.to_vec().iter().map(|e| e.cycle.get()).collect();
        assert_eq!(cycles, [7, 8, 9]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut log = EventLogProbe::with_capacity(0);
        log.record(Cycles::ZERO, hit(0));
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn into_events_returns_chronological_vec() {
        let mut log = EventLogProbe::new();
        log.record(Cycles::new(5), hit(0));
        log.record(Cycles::new(3), hit(1));
        let events = log.into_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].cycle <= events[1].cycle);
    }
}
