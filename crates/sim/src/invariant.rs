//! Online coherence-invariant checking: [`InvariantProbe`].
//!
//! The probe reconstructs a *shadow* coherence state from the engine's
//! event stream and checks, while any simulation runs, the same invariant
//! set the `cohort-verif` exhaustive model checker establishes over the
//! abstract protocol:
//!
//! - **SWMR** — at most one writer per line, and no Shared copies coexist
//!   with a Modified owner (checked at every fill against the shadow
//!   state, which the engine's invalidate/downgrade events must have
//!   cleared first);
//! - **data-value (source)** — data is always supplied by the current
//!   owner: a transfer sourced from the shared memory while a core holds
//!   the line Modified would hand out stale data;
//! - **timer protection** — no dispossession (steal or downgrade) of a
//!   held line before its θ release instant, mirrored with the engine's
//!   own [`release_time`] function over the shadow waiter queues;
//! - **liveness** — every broadcast request is eventually filled: at run
//!   completion no shadow waiter queue may retain an entry.
//!
//! Because the shadow state is derived *only* from the event stream, the
//! probe cross-validates the engine's externally visible behaviour rather
//! than re-reading the engine's internals — an engine bug that corrupts
//! `CoherenceMap` *and* emits matching events is caught by the deep scan
//! [`Simulator::validate_coherence`](crate::Simulator::validate_coherence)
//! instead, which the replay harness in `cohort-verif` invokes alongside
//! this probe.
//!
//! Like every probe, attaching it costs nothing when unused: the default
//! [`NoProbe`](crate::NoProbe) engine monomorphises all instrumentation
//! away.
//!
//! # Examples
//!
//! ```
//! use cohort_sim::{InvariantProbe, SimConfig, Simulator};
//! use cohort_trace::micro;
//! use cohort_types::TimerValue;
//!
//! let config = SimConfig::builder(2).timer(0, TimerValue::timed(20)?).build()?;
//! let mut sim = Simulator::with_probe(config, &micro::ping_pong(2, 6), InvariantProbe::new())?;
//! sim.run()?;
//! assert!(sim.probe().is_clean(), "{:?}", sim.probe().violations());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

use cohort_types::{Cycles, LineAddr, TimerValue};

use crate::coherence::ReqKind;
use crate::event::{EventKind, InvalidateCause};
use crate::probe::SimProbe;
use crate::timer::release_time;
use crate::{ProtocolFlavor, SimConfig, SimStats};

/// Which invariant a [`InvariantViolation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// Single-writer / multiple-reader was violated.
    Swmr,
    /// Data was read or supplied from a stale source.
    DataValue,
    /// A holder was dispossessed before its θ release instant.
    TimerProtection,
    /// A request was enqueued but never served.
    Liveness,
    /// The event stream itself is inconsistent (e.g. a fill without a
    /// broadcast, a downgrade of a non-owner).
    Bookkeeping,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantKind::Swmr => "SWMR",
            InvariantKind::DataValue => "data-value",
            InvariantKind::TimerProtection => "timer-protection",
            InvariantKind::Liveness => "liveness",
            InvariantKind::Bookkeeping => "bookkeeping",
        };
        f.write_str(name)
    }
}

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Cycle at which the violating event was observed.
    pub cycle: Cycles,
    /// The violated invariant.
    pub kind: InvariantKind,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[cycle {}] {} violated: {}", self.cycle, self.kind, self.message)
    }
}

/// Shadow coherence state of one core's copy of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShadowState {
    Invalid,
    Shared,
    Modified,
}

#[derive(Debug, Clone, Copy)]
struct ShadowCopy {
    state: ShadowState,
    /// Fill instant (counter Load).
    anchor: Cycles,
    /// θ loaded at fill time (the live register at the fill instant).
    theta: TimerValue,
    /// The live register was MSI at some point since the fill (a mode
    /// switch to θ = −1 pulls Enable low and legalises immediate release).
    ever_msi: bool,
}

impl ShadowCopy {
    const INVALID: ShadowCopy = ShadowCopy {
        state: ShadowState::Invalid,
        anchor: Cycles::ZERO,
        theta: TimerValue::Msi,
        ever_msi: false,
    };
}

#[derive(Debug, Clone, Copy)]
struct ShadowWaiter {
    core: usize,
    kind: ReqKind,
    enqueued: Cycles,
}

#[derive(Debug, Clone)]
struct ShadowLine {
    copies: Vec<ShadowCopy>,
    waiters: VecDeque<ShadowWaiter>,
}

impl ShadowLine {
    fn new(cores: usize) -> Self {
        ShadowLine { copies: vec![ShadowCopy::INVALID; cores], waiters: VecDeque::new() }
    }
}

/// A [`SimProbe`] that checks coherence invariants online against the
/// event stream of a live run — see the [module docs](self) for the
/// invariant set and the cross-validation story.
///
/// Violations accumulate in [`InvariantProbe::violations`]; construct the
/// probe with [`InvariantProbe::strict`] to panic on the first violation
/// instead (useful in tests).
#[derive(Debug, Clone, Default)]
pub struct InvariantProbe {
    cores: usize,
    flavor: Option<ProtocolFlavor>,
    timers: Vec<TimerValue>,
    priority: Option<Vec<bool>>,
    lines: BTreeMap<LineAddr, ShadowLine>,
    /// Lines with an outstanding broadcast per core (MSHR mirror for the
    /// `j ≠ i` release exclusion).
    inflight: Vec<Vec<LineAddr>>,
    violations: Vec<InvariantViolation>,
    events_checked: u64,
    strict: bool,
}

impl InvariantProbe {
    /// Creates a probe that records violations without interrupting the
    /// run.
    #[must_use]
    pub fn new() -> Self {
        InvariantProbe::default()
    }

    /// Creates a probe that panics on the first violation, turning any
    /// simulation into a hard invariant test.
    #[must_use]
    pub fn strict() -> Self {
        InvariantProbe { strict: true, ..InvariantProbe::default() }
    }

    /// The violations observed so far, in event order.
    #[must_use]
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Returns `true` if no invariant violation was observed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of events the probe has checked.
    #[must_use]
    pub fn events_checked(&self) -> u64 {
        self.events_checked
    }

    /// Consumes the probe, returning the observed violations.
    #[must_use]
    pub fn into_violations(self) -> Vec<InvariantViolation> {
        self.violations
    }

    fn report(&mut self, cycle: Cycles, kind: InvariantKind, message: String) {
        let violation = InvariantViolation { cycle, kind, message };
        assert!(!self.strict, "coherence invariant violated: {violation}");
        self.violations.push(violation);
    }

    fn line_mut(&mut self, line: LineAddr) -> &mut ShadowLine {
        let cores = self.cores;
        self.lines.entry(line).or_insert_with(|| ShadowLine::new(cores))
    }

    fn has_inflight(&self, core: usize, line: LineAddr) -> bool {
        self.inflight.get(core).is_some_and(|l| l.contains(&line))
    }

    /// The earliest instant at which `holder` may legally be dispossessed
    /// of `line`, mirroring the engine's release computation over the
    /// shadow state. Returns `None` when any release is legal (MSI/θ = 0
    /// copies, a register that went MSI since the fill, a holder waiting
    /// on its own request, or no shadow copy to protect).
    fn earliest_legal_release(&self, holder: usize, line: LineAddr) -> Option<Cycles> {
        let shadow = self.lines.get(&line)?;
        let copy = shadow.copies.get(holder)?;
        if copy.state == ShadowState::Invalid {
            return None;
        }
        match copy.theta.theta() {
            None | Some(0) => return None,
            Some(_) => {}
        }
        if copy.ever_msi || self.has_inflight(holder, line) {
            return None;
        }
        // The earliest queued request that dispossesses this holder is the
        // most generous PendingInv instant (release_time is monotone in
        // it), so checking against it never yields a false positive.
        let owner = copy.state == ShadowState::Modified;
        let pending = shadow
            .waiters
            .iter()
            .filter(|w| w.core != holder && (w.kind.is_get_m() || owner))
            .map(|w| w.enqueued)
            .min()?;
        Some(release_time(copy.anchor, copy.theta, pending.max(copy.anchor)))
    }

    /// Checks that dispossessing `holder` at `cycle` respects its timer.
    fn check_timer_protection(&mut self, cycle: Cycles, holder: usize, line: LineAddr) {
        if let Some(release) = self.earliest_legal_release(holder, line) {
            if cycle < release {
                self.report(
                    cycle,
                    InvariantKind::TimerProtection,
                    format!(
                        "c{holder} dispossessed of {line} at {cycle}, before its \
                         θ release instant {release}"
                    ),
                );
            }
        }
    }

    fn on_broadcast(&mut self, cycle: Cycles, core: usize, line: LineAddr, kind: ReqKind) {
        let waiter = ShadowWaiter { core, kind, enqueued: cycle };
        let priority = self.priority.clone();
        let shadow = self.line_mut(line);
        // Mirror the engine's queueing discipline: critical requests are
        // inserted ahead of queued non-critical waiters.
        match priority {
            Some(critical) if critical.get(core).copied().unwrap_or(false) => {
                let pos = shadow
                    .waiters
                    .iter()
                    .position(|w| !critical.get(w.core).copied().unwrap_or(false))
                    .unwrap_or(shadow.waiters.len());
                shadow.waiters.insert(pos, waiter);
            }
            _ => shadow.waiters.push_back(waiter),
        }
        if let Some(inflight) = self.inflight.get_mut(core) {
            if !inflight.contains(&line) {
                inflight.push(line);
            }
        }
    }

    fn on_transfer_start(&mut self, cycle: Cycles, from: Option<usize>, to: usize, line: LineAddr) {
        // Data-value (source) checks assume the MSI repertoire: under MESI
        // an Exclusive owner is invisible to the event stream (silent
        // upgrades emit nothing), so the shadow state cannot distinguish a
        // legal Exclusive supplier from a stale one.
        if self.flavor != Some(ProtocolFlavor::Msi) {
            return;
        }
        let Some(shadow) = self.lines.get(&line) else { return };
        let modified_holder = shadow
            .copies
            .iter()
            .enumerate()
            .find(|(c, copy)| *c != to && copy.state == ShadowState::Modified)
            .map(|(c, _)| c);
        match (modified_holder, from) {
            (Some(owner), source) if source != Some(owner) => self.report(
                cycle,
                InvariantKind::DataValue,
                format!(
                    "transfer of {line} to c{to} sourced from {source:?} while c{owner} \
                     holds the last committed write"
                ),
            ),
            (None, Some(supplier)) => self.report(
                cycle,
                InvariantKind::DataValue,
                format!(
                    "transfer of {line} to c{to} sourced from c{supplier}, which does \
                     not own the line"
                ),
            ),
            _ => {}
        }
    }

    fn on_fill(&mut self, cycle: Cycles, core: usize, line: LineAddr, kind: ReqKind) {
        let theta = self.timers.get(core).copied().unwrap_or(TimerValue::Msi);
        let shadow = self.line_mut(line);
        let served = shadow
            .waiters
            .iter()
            .position(|w| w.core == core)
            .map(|pos| shadow.waiters.remove(pos));
        // Single-writer / multiple-reader, checked against the *shadow*
        // state: the engine must have emitted the invalidations (GetM) or
        // the owner downgrade (GetS) before the fill completes.
        let conflicts: Vec<String> = shadow
            .copies
            .iter()
            .enumerate()
            .filter(|&(c, copy)| {
                c != core
                    && match kind {
                        ReqKind::GetM => copy.state != ShadowState::Invalid,
                        ReqKind::GetS => copy.state == ShadowState::Modified,
                    }
            })
            .map(|(c, copy)| format!("c{c}:{:?}", copy.state))
            .collect();
        let state = match kind {
            ReqKind::GetM => ShadowState::Modified,
            ReqKind::GetS => ShadowState::Shared,
        };
        shadow.copies[core] = ShadowCopy { state, anchor: cycle, theta, ever_msi: theta.is_msi() };
        if let Some(inflight) = self.inflight.get_mut(core) {
            inflight.retain(|&l| l != line);
        }
        if served.is_none() {
            self.report(
                cycle,
                InvariantKind::Bookkeeping,
                format!("c{core} filled {line} without a matching broadcast"),
            );
        }
        if !conflicts.is_empty() {
            self.report(
                cycle,
                InvariantKind::Swmr,
                format!(
                    "{kind:?} fill of {line} by c{core} while other copies remain \
                     valid ({})",
                    conflicts.join(", ")
                ),
            );
        }
    }

    fn on_invalidate(
        &mut self,
        cycle: Cycles,
        core: usize,
        line: LineAddr,
        cause: InvalidateCause,
    ) {
        // Back-invalidation (LLC inclusion) and self-replacement legally
        // bypass the timer; only a steal must honour the release instant.
        if cause == InvalidateCause::Stolen {
            self.check_timer_protection(cycle, core, line);
        }
        self.line_mut(line).copies[core] = ShadowCopy::INVALID;
    }

    fn on_downgrade(&mut self, cycle: Cycles, core: usize, line: LineAddr) {
        self.check_timer_protection(cycle, core, line);
        let msi_flavor = self.flavor == Some(ProtocolFlavor::Msi);
        let shadow = self.line_mut(line);
        let copy = &mut shadow.copies[core];
        if copy.state == ShadowState::Modified {
            copy.state = ShadowState::Shared;
        } else if msi_flavor {
            // Under MESI an Exclusive owner is shadowed as Shared (its
            // fill was a GetS and the silent upgrade emits no event), so
            // a downgrade of a Shared shadow copy is only suspicious in
            // the MSI repertoire.
            let state = copy.state;
            self.report(
                cycle,
                InvariantKind::Bookkeeping,
                format!("downgrade of {line} in c{core}, whose shadow state is {state:?}"),
            );
        }
    }

    fn on_hit(&mut self, cycle: Cycles, core: usize, line: LineAddr) {
        let present =
            self.lines.get(&line).map_or(ShadowState::Invalid, |shadow| shadow.copies[core].state);
        // A hit on a line the event stream says this core does not hold
        // would return data from nowhere. Cold lines (never transferred)
        // have no shadow entry and no hit can precede their first fill.
        if present == ShadowState::Invalid && self.lines.contains_key(&line) {
            self.report(
                cycle,
                InvariantKind::DataValue,
                format!("c{core} hit {line} without holding a copy"),
            );
        }
    }
}

impl SimProbe for InvariantProbe {
    fn on_start(&mut self, config: &SimConfig) {
        self.cores = config.cores();
        self.flavor = Some(config.flavor());
        self.timers = config.timers().to_vec();
        self.priority = config.waiter_priority().map(<[bool]>::to_vec);
        self.lines.clear();
        self.inflight = vec![Vec::new(); config.cores()];
        self.violations.clear();
        self.events_checked = 0;
    }

    fn on_event(&mut self, cycle: Cycles, kind: &EventKind) {
        self.events_checked += 1;
        match *kind {
            EventKind::Hit { core, line } => self.on_hit(cycle, core, line),
            EventKind::Broadcast { core, line, kind } => self.on_broadcast(cycle, core, line, kind),
            EventKind::TransferStart { from, to, line } => {
                self.on_transfer_start(cycle, from, to, line);
            }
            EventKind::Fill { core, line, kind, .. } => self.on_fill(cycle, core, line, kind),
            EventKind::Downgrade { core, line } => self.on_downgrade(cycle, core, line),
            EventKind::Invalidate { core, line, cause } => {
                self.on_invalidate(cycle, core, line, cause);
            }
            EventKind::TimerSwitch { ref timers } => {
                let went_msi: Vec<usize> =
                    timers.iter().enumerate().filter(|(_, t)| t.is_msi()).map(|(c, _)| c).collect();
                for shadow in self.lines.values_mut() {
                    for &core in &went_msi {
                        if let Some(copy) = shadow.copies.get_mut(core) {
                            copy.ever_msi = true;
                        }
                    }
                }
                self.timers.clone_from(timers);
            }
            EventKind::MissIssued { .. } => {}
        }
    }

    fn on_finish(&mut self, _stats: &SimStats) {
        let stuck: Vec<(LineAddr, ShadowWaiter)> = self
            .lines
            .iter()
            .flat_map(|(&line, shadow)| shadow.waiters.iter().map(move |&w| (line, w)))
            .collect();
        for (line, waiter) in stuck {
            self.report(
                waiter.enqueued,
                InvariantKind::Liveness,
                format!(
                    "c{} enqueued a {:?} for {line} at {} that was never served",
                    waiter.core, waiter.kind, waiter.enqueued
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_for(cores: usize) -> InvariantProbe {
        let config = SimConfig::builder(cores).build().unwrap();
        let mut probe = InvariantProbe::new();
        probe.on_start(&config);
        probe
    }

    fn line() -> LineAddr {
        LineAddr::new(7)
    }

    #[test]
    fn clean_getm_hand_over_is_accepted() {
        let mut p = probe_for(2);
        p.on_event(
            Cycles::new(4),
            &EventKind::Broadcast { core: 0, line: line(), kind: ReqKind::GetM },
        );
        p.on_event(
            Cycles::new(10),
            &EventKind::Fill {
                core: 0,
                line: line(),
                kind: ReqKind::GetM,
                latency: Cycles::new(6),
            },
        );
        p.on_event(
            Cycles::new(20),
            &EventKind::Broadcast { core: 1, line: line(), kind: ReqKind::GetM },
        );
        p.on_event(
            Cycles::new(24),
            &EventKind::Invalidate { core: 0, line: line(), cause: InvalidateCause::Stolen },
        );
        p.on_event(
            Cycles::new(24),
            &EventKind::Fill {
                core: 1,
                line: line(),
                kind: ReqKind::GetM,
                latency: Cycles::new(4),
            },
        );
        p.on_finish(&SimStats::default());
        assert!(p.is_clean(), "{:?}", p.violations());
        assert_eq!(p.events_checked(), 5);
    }

    #[test]
    fn surviving_copy_on_getm_fill_is_swmr_violation() {
        let mut p = probe_for(2);
        p.on_event(
            Cycles::new(4),
            &EventKind::Broadcast { core: 0, line: line(), kind: ReqKind::GetM },
        );
        p.on_event(
            Cycles::new(10),
            &EventKind::Fill {
                core: 0,
                line: line(),
                kind: ReqKind::GetM,
                latency: Cycles::new(6),
            },
        );
        p.on_event(
            Cycles::new(20),
            &EventKind::Broadcast { core: 1, line: line(), kind: ReqKind::GetM },
        );
        // No Invalidate for c0 before c1's fill: two writers.
        p.on_event(
            Cycles::new(24),
            &EventKind::Fill {
                core: 1,
                line: line(),
                kind: ReqKind::GetM,
                latency: Cycles::new(4),
            },
        );
        assert_eq!(p.violations().len(), 1);
        assert_eq!(p.violations()[0].kind, InvariantKind::Swmr);
    }

    #[test]
    fn stale_source_is_data_value_violation() {
        let mut p = probe_for(2);
        p.on_event(
            Cycles::new(4),
            &EventKind::Broadcast { core: 0, line: line(), kind: ReqKind::GetM },
        );
        p.on_event(
            Cycles::new(10),
            &EventKind::Fill {
                core: 0,
                line: line(),
                kind: ReqKind::GetM,
                latency: Cycles::new(6),
            },
        );
        // c1 reads, but the data comes from the shared memory instead of
        // the Modified owner c0.
        p.on_event(
            Cycles::new(20),
            &EventKind::Broadcast { core: 1, line: line(), kind: ReqKind::GetS },
        );
        p.on_event(Cycles::new(22), &EventKind::TransferStart { from: None, to: 1, line: line() });
        assert_eq!(p.violations().len(), 1);
        assert_eq!(p.violations()[0].kind, InvariantKind::DataValue);
    }

    #[test]
    fn early_steal_from_timed_holder_is_timer_violation() {
        let config =
            SimConfig::builder(2).timer(0, TimerValue::timed(100).unwrap()).build().unwrap();
        let mut p = InvariantProbe::new();
        p.on_start(&config);
        p.on_event(
            Cycles::new(0),
            &EventKind::Broadcast { core: 0, line: line(), kind: ReqKind::GetM },
        );
        p.on_event(
            Cycles::new(10),
            &EventKind::Fill {
                core: 0,
                line: line(),
                kind: ReqKind::GetM,
                latency: Cycles::new(10),
            },
        );
        p.on_event(
            Cycles::new(20),
            &EventKind::Broadcast { core: 1, line: line(), kind: ReqKind::GetM },
        );
        // Release instant is anchor 10 + θ 100 = 110; stealing at 40 is
        // a protection violation, stealing at 110 is legal.
        p.on_event(
            Cycles::new(40),
            &EventKind::Invalidate { core: 0, line: line(), cause: InvalidateCause::Stolen },
        );
        assert_eq!(p.violations().len(), 1);
        assert_eq!(p.violations()[0].kind, InvariantKind::TimerProtection);
    }

    #[test]
    fn steal_at_release_instant_is_legal() {
        let config =
            SimConfig::builder(2).timer(0, TimerValue::timed(100).unwrap()).build().unwrap();
        let mut p = InvariantProbe::new();
        p.on_start(&config);
        p.on_event(
            Cycles::new(0),
            &EventKind::Broadcast { core: 0, line: line(), kind: ReqKind::GetM },
        );
        p.on_event(
            Cycles::new(10),
            &EventKind::Fill {
                core: 0,
                line: line(),
                kind: ReqKind::GetM,
                latency: Cycles::new(10),
            },
        );
        p.on_event(
            Cycles::new(20),
            &EventKind::Broadcast { core: 1, line: line(), kind: ReqKind::GetM },
        );
        p.on_event(
            Cycles::new(110),
            &EventKind::Invalidate { core: 0, line: line(), cause: InvalidateCause::Stolen },
        );
        assert!(p.is_clean(), "{:?}", p.violations());
    }

    #[test]
    fn switch_to_msi_legalises_immediate_release() {
        let config =
            SimConfig::builder(2).timer(0, TimerValue::timed(100).unwrap()).build().unwrap();
        let mut p = InvariantProbe::new();
        p.on_start(&config);
        p.on_event(
            Cycles::new(0),
            &EventKind::Broadcast { core: 0, line: line(), kind: ReqKind::GetM },
        );
        p.on_event(
            Cycles::new(10),
            &EventKind::Fill {
                core: 0,
                line: line(),
                kind: ReqKind::GetM,
                latency: Cycles::new(10),
            },
        );
        p.on_event(
            Cycles::new(15),
            &EventKind::TimerSwitch { timers: vec![TimerValue::Msi, TimerValue::Msi] },
        );
        p.on_event(
            Cycles::new(20),
            &EventKind::Broadcast { core: 1, line: line(), kind: ReqKind::GetM },
        );
        p.on_event(
            Cycles::new(24),
            &EventKind::Invalidate { core: 0, line: line(), cause: InvalidateCause::Stolen },
        );
        assert!(p.is_clean(), "{:?}", p.violations());
    }

    #[test]
    fn unserved_waiter_is_liveness_violation() {
        let mut p = probe_for(2);
        p.on_event(
            Cycles::new(4),
            &EventKind::Broadcast { core: 0, line: line(), kind: ReqKind::GetS },
        );
        p.on_finish(&SimStats::default());
        assert_eq!(p.violations().len(), 1);
        assert_eq!(p.violations()[0].kind, InvariantKind::Liveness);
        assert!(p.violations()[0].to_string().contains("never served"));
    }

    #[test]
    #[should_panic(expected = "coherence invariant violated")]
    fn strict_probe_panics_on_first_violation() {
        let mut p = InvariantProbe::strict();
        p.on_start(&SimConfig::builder(2).build().unwrap());
        p.on_event(
            Cycles::new(4),
            &EventKind::Broadcast { core: 0, line: line(), kind: ReqKind::GetS },
        );
        p.on_finish(&SimStats::default());
    }
}
