//! [`ChromeTraceProbe`]: export a run as a Chrome/Perfetto trace.
//!
//! The probe records bus tenures and protocol events and serializes them
//! in the [Trace Event Format] (`{"traceEvents": [...]}`), loadable in
//! `chrome://tracing` and [Perfetto]. One timeline track (thread) per
//! core, plus a **bus** track and an **llc** track:
//!
//! - every bus tenure is a complete `B`/`E` duration pair on the bus
//!   track (tenures never overlap, so the pairs nest trivially);
//! - every miss is an `X` complete event on its core's track, spanning
//!   issue to fill;
//! - invalidations, downgrades and mode switches are instant events;
//! - LLC/memory-sourced data supplies are instants on the llc track.
//!
//! Cycle stamps are written as microseconds 1:1 (`ts` in the format is
//! µs), so one displayed microsecond is one simulated cycle.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev
//!
//! # Examples
//!
//! ```
//! use cohort_sim::{ChromeTraceProbe, SimConfig, Simulator};
//! use cohort_trace::micro;
//!
//! let config = SimConfig::builder(2).build()?;
//! let mut probe = ChromeTraceProbe::new();
//! let mut sim = Simulator::with_probe(config, &micro::ping_pong(2, 4), &mut probe)?;
//! sim.run()?;
//! let json = probe.to_json();
//! assert!(json.get("traceEvents").and_then(|v| v.as_array()).is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::Write as _;
use std::path::Path;

use cohort_types::{Cycles, LineAddr};

use crate::event::{EventKind, InvalidateCause};
use crate::probe::{BusTenure, SimProbe, TenureKind};
use crate::SimConfig;

/// What one recorded trace entry is, kept typed until export.
#[derive(Debug, Clone)]
enum Entry {
    /// A bus tenure, exported as a `B`/`E` pair on the bus track.
    Tenure(BusTenure),
    /// A completed miss, exported as an `X` span on the core's track.
    Miss { core: usize, line: LineAddr, start: u64, duration: u64, store: bool },
    /// An instant event on some track.
    Instant { tid: Track, name: &'static str, at: u64, line: Option<LineAddr> },
}

#[derive(Debug, Clone, Copy)]
enum Track {
    Core(usize),
    Bus,
    Llc,
}

/// The built-in Chrome-trace probe. Collects entries during the run; call
/// [`ChromeTraceProbe::to_json`] / [`ChromeTraceProbe::write_to`] after.
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceProbe {
    cores: usize,
    entries: Vec<Entry>,
}

impl ChromeTraceProbe {
    /// Creates a Chrome-trace probe.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn tid(&self, track: Track) -> u64 {
        match track {
            Track::Core(id) => id as u64,
            Track::Bus => self.cores as u64,
            Track::Llc => self.cores as u64 + 1,
        }
    }

    fn event(
        &self,
        name: &str,
        ph: &str,
        ts: u64,
        track: Track,
        args: Vec<(&str, serde_json::Value)>,
    ) -> serde_json::Value {
        let mut e = serde_json::Map::new();
        e.insert("name".into(), serde_json::Value::from(name));
        e.insert("ph".into(), serde_json::Value::from(ph));
        e.insert("ts".into(), serde_json::Value::from(ts));
        e.insert("pid".into(), serde_json::Value::from(0u64));
        e.insert("tid".into(), serde_json::Value::from(self.tid(track)));
        if ph == "i" {
            // Thread-scoped instant: renders as a tick on the track.
            e.insert("s".into(), serde_json::Value::from("t"));
        }
        if !args.is_empty() {
            let mut a = serde_json::Map::new();
            for (k, v) in args {
                a.insert(k.into(), v);
            }
            e.insert("args".into(), serde_json::Value::Object(a));
        }
        serde_json::Value::Object(e)
    }

    fn thread_name(&self, track: Track, name: &str) -> serde_json::Value {
        let mut e = serde_json::Map::new();
        e.insert("name".into(), serde_json::Value::from("thread_name"));
        e.insert("ph".into(), serde_json::Value::from("M"));
        e.insert("pid".into(), serde_json::Value::from(0u64));
        e.insert("tid".into(), serde_json::Value::from(self.tid(track)));
        let mut a = serde_json::Map::new();
        a.insert("name".into(), serde_json::Value::from(name));
        e.insert("args".into(), serde_json::Value::Object(a));
        serde_json::Value::Object(e)
    }

    /// Builds the `{"traceEvents": [...]}` document.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let mut events: Vec<serde_json::Value> = Vec::with_capacity(self.entries.len() * 2 + 8);
        for core in 0..self.cores {
            events.push(self.thread_name(Track::Core(core), &format!("core {core}")));
        }
        events.push(self.thread_name(Track::Bus, "bus"));
        events.push(self.thread_name(Track::Llc, "llc"));
        for entry in &self.entries {
            match entry {
                Entry::Tenure(t) => {
                    let name = match t.kind {
                        TenureKind::Broadcast => "broadcast",
                        TenureKind::Transfer { .. } => "transfer",
                        TenureKind::Fused { .. } => "req+transfer",
                    };
                    let mut args = vec![
                        ("core", serde_json::Value::from(t.core as u64)),
                        ("line", serde_json::Value::from(t.line.raw())),
                    ];
                    if let Some(from) = t.kind.from_core() {
                        args.push(("from", serde_json::Value::from(from as u64)));
                    }
                    events.push(self.event(name, "B", t.start.get(), Track::Bus, args));
                    events.push(self.event(name, "E", t.end.get(), Track::Bus, Vec::new()));
                }
                Entry::Miss { core, line, start, duration, store } => {
                    let name = if *store { "miss (GetM)" } else { "miss (GetS)" };
                    let mut e = serde_json::Map::new();
                    e.insert("name".into(), serde_json::Value::from(name));
                    e.insert("ph".into(), serde_json::Value::from("X"));
                    e.insert("ts".into(), serde_json::Value::from(*start));
                    e.insert("dur".into(), serde_json::Value::from(*duration));
                    e.insert("pid".into(), serde_json::Value::from(0u64));
                    e.insert("tid".into(), serde_json::Value::from(self.tid(Track::Core(*core))));
                    let mut a = serde_json::Map::new();
                    a.insert("line".into(), serde_json::Value::from(line.raw()));
                    e.insert("args".into(), serde_json::Value::Object(a));
                    events.push(serde_json::Value::Object(e));
                }
                Entry::Instant { tid, name, at, line } => {
                    let args = match line {
                        Some(l) => vec![("line", serde_json::Value::from(l.raw()))],
                        None => Vec::new(),
                    };
                    events.push(self.event(name, "i", *at, *tid, args));
                }
            }
        }
        let mut root = serde_json::Map::new();
        root.insert("traceEvents".into(), serde_json::Value::from(events));
        root.insert("displayTimeUnit".into(), serde_json::Value::from("ms"));
        serde_json::Value::Object(root)
    }

    /// Serializes the trace to a JSON string.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        serde_json::to_string(&self.to_json()).unwrap_or_else(|_| "{\"traceEvents\":[]}".into())
    }

    /// Writes the trace to `path` (e.g. `trace.json`, for
    /// `chrome://tracing` or Perfetto).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json_string().as_bytes())?;
        file.write_all(b"\n")
    }
}

impl SimProbe for ChromeTraceProbe {
    fn on_start(&mut self, config: &SimConfig) {
        self.cores = config.cores();
    }

    fn on_event(&mut self, cycle: Cycles, kind: &EventKind) {
        let at = cycle.get();
        match kind {
            EventKind::Fill { core, line, kind, latency } => {
                self.entries.push(Entry::Miss {
                    core: *core,
                    line: *line,
                    start: at.saturating_sub(latency.get()),
                    duration: latency.get(),
                    store: kind.is_get_m(),
                });
            }
            EventKind::Invalidate { core, line, cause } => {
                let name = match cause {
                    InvalidateCause::Stolen => "invalidate (stolen)",
                    InvalidateCause::BackInvalidation => "invalidate (back-inval)",
                    InvalidateCause::Replacement => "evict",
                };
                self.entries.push(Entry::Instant {
                    tid: Track::Core(*core),
                    name,
                    at,
                    line: Some(*line),
                });
            }
            EventKind::Downgrade { core, line } => {
                self.entries.push(Entry::Instant {
                    tid: Track::Core(*core),
                    name: "downgrade",
                    at,
                    line: Some(*line),
                });
            }
            EventKind::TransferStart { from: None, line, .. } => {
                self.entries.push(Entry::Instant {
                    tid: Track::Llc,
                    name: "supply",
                    at,
                    line: Some(*line),
                });
            }
            EventKind::TimerSwitch { .. } => {
                self.entries.push(Entry::Instant {
                    tid: Track::Bus,
                    name: "mode-switch",
                    at,
                    line: None,
                });
            }
            _ => {}
        }
    }

    fn on_bus_tenure(&mut self, tenure: &BusTenure) {
        self.entries.push(Entry::Tenure(*tenure));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_probe_exports_metadata_only() {
        let mut probe = ChromeTraceProbe::new();
        probe.cores = 2;
        let json = probe.to_json();
        let events = json.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        // 2 core tracks + bus + llc metadata records.
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")));
    }

    #[test]
    fn tenures_export_as_balanced_begin_end_pairs() {
        let mut probe = ChromeTraceProbe::new();
        probe.cores = 1;
        probe.on_bus_tenure(&BusTenure {
            core: 0,
            line: LineAddr::new(7),
            start: Cycles::new(10),
            end: Cycles::new(64),
            kind: TenureKind::Fused { from: None },
        });
        let json = probe.to_json();
        let events = json.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(|p| p.as_str())).collect();
        assert_eq!(phases.iter().filter(|p| **p == "B").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "E").count(), 1);
        let begin = events.iter().find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"));
        assert_eq!(begin.unwrap().get("ts").and_then(serde_json::Value::as_u64), Some(10));
    }

    #[test]
    fn round_trips_through_a_json_parser() {
        let mut probe = ChromeTraceProbe::new();
        probe.cores = 1;
        probe.on_event(
            Cycles::new(64),
            &EventKind::Fill {
                core: 0,
                line: LineAddr::new(3),
                kind: crate::ReqKind::GetM,
                latency: Cycles::new(54),
            },
        );
        let text = probe.to_json_string();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = parsed.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let miss = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("one X span per miss");
        assert_eq!(miss.get("ts").and_then(serde_json::Value::as_u64), Some(10));
        assert_eq!(miss.get("dur").and_then(serde_json::Value::as_u64), Some(54));
    }
}
