//! Trace-driven core model with MSHRs (non-blocking, hits-over-misses).

use cohort_trace::TraceOp;
use cohort_types::Cycles;

use crate::coherence::ReqKind;
use cohort_types::LineAddr;

/// An outstanding miss tracked by a core's MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MshrEntry {
    /// The missing line.
    pub line: LineAddr,
    /// GetS (load miss) or GetM (store miss / upgrade).
    pub kind: ReqKind,
    /// Cycle the miss was issued to the memory system.
    pub issued: Cycles,
    /// Whether the request has been broadcast on the bus.
    pub broadcast: bool,
    /// Whether the requester holds a Shared copy (upgrade request).
    pub upgrade: bool,
}

/// Per-core replay state. All behaviour lives in the engine; this struct is
/// the bookkeeping it operates on.
#[derive(Debug, Clone)]
pub(crate) struct CoreModel {
    /// Trace operations to replay.
    pub ops: Vec<TraceOp>,
    /// Index of the next operation to issue.
    pub cursor: usize,
    /// Earliest cycle the core can act (compute gap / hit latency elapsed).
    pub ready_at: Cycles,
    /// Set when the next operation cannot issue (MSHR full or the line has
    /// a miss in flight); cleared when a miss completes.
    pub stalled: bool,
    /// Outstanding misses, oldest first.
    pub mshr: Vec<MshrEntry>,
    /// MSHR capacity.
    pub mshr_capacity: usize,
    /// Completion cycle of the last access, once the trace is drained.
    pub finish: Option<Cycles>,
    /// Completion cycle of the most recent access.
    pub last_completion: Cycles,
}

impl CoreModel {
    pub(crate) fn new(ops: Vec<TraceOp>, mshr_capacity: usize) -> Self {
        let first_gap = ops.first().map_or(Cycles::ZERO, |op| op.gap);
        CoreModel {
            ops,
            cursor: 0,
            ready_at: first_gap,
            stalled: false,
            mshr: Vec::with_capacity(mshr_capacity),
            mshr_capacity,
            finish: None,
            last_completion: Cycles::ZERO,
        }
    }

    /// The next operation to issue, if the trace is not drained.
    pub(crate) fn current_op(&self) -> Option<&TraceOp> {
        self.ops.get(self.cursor)
    }

    /// True once the trace is drained and all misses have completed.
    pub(crate) fn is_done(&self) -> bool {
        self.cursor >= self.ops.len() && self.mshr.is_empty()
    }

    /// The core's oldest outstanding request.
    pub(crate) fn oldest_request(&self) -> Option<&MshrEntry> {
        self.mshr.first()
    }

    /// The core's oldest request that has not yet been broadcast.
    pub(crate) fn oldest_unbroadcast(&self) -> Option<&MshrEntry> {
        self.mshr.iter().find(|m| !m.broadcast)
    }

    /// Whether a miss for `line` is already in flight.
    pub(crate) fn has_inflight(&self, line: LineAddr) -> bool {
        self.mshr.iter().any(|m| m.line == line)
    }

    /// Allocates an MSHR entry. Caller must have checked capacity.
    pub(crate) fn allocate(&mut self, entry: MshrEntry) {
        debug_assert!(self.mshr.len() < self.mshr_capacity, "MSHR overflow");
        self.mshr.push(entry);
    }

    /// Completes (removes) the in-flight miss for `line`, returning it.
    pub(crate) fn complete(&mut self, line: LineAddr) -> Option<MshrEntry> {
        let pos = self.mshr.iter().position(|m| m.line == line)?;
        Some(self.mshr.remove(pos))
    }

    /// Marks the oldest un-broadcast request for `line` as broadcast.
    pub(crate) fn mark_broadcast(&mut self, line: LineAddr) {
        if let Some(m) = self.mshr.iter_mut().find(|m| m.line == line && !m.broadcast) {
            m.broadcast = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_trace::TraceOp;

    fn entry(line: u64, issued: u64) -> MshrEntry {
        MshrEntry {
            line: LineAddr::new(line),
            kind: ReqKind::GetM,
            issued: Cycles::new(issued),
            broadcast: false,
            upgrade: false,
        }
    }

    #[test]
    fn initial_ready_time_honours_first_gap() {
        let core = CoreModel::new(vec![TraceOp::load(0).after(7)], 1);
        assert_eq!(core.ready_at.get(), 7);
        assert!(!core.is_done());
    }

    #[test]
    fn empty_trace_is_done_immediately() {
        let core = CoreModel::new(vec![], 1);
        assert!(core.is_done());
        assert!(core.current_op().is_none());
    }

    #[test]
    fn mshr_lifecycle() {
        let mut core = CoreModel::new(vec![TraceOp::load(0)], 2);
        core.allocate(entry(0, 5));
        core.allocate(entry(1, 9));
        assert!(core.has_inflight(LineAddr::new(0)));
        assert_eq!(core.oldest_request().unwrap().issued.get(), 5);
        assert_eq!(core.oldest_unbroadcast().unwrap().line.raw(), 0);
        core.mark_broadcast(LineAddr::new(0));
        assert_eq!(core.oldest_unbroadcast().unwrap().line.raw(), 1);
        let done = core.complete(LineAddr::new(0)).unwrap();
        assert!(done.broadcast);
        assert!(!core.has_inflight(LineAddr::new(0)));
        assert_eq!(core.complete(LineAddr::new(7)), None);
    }
}
