//! Measurement results of a simulation run.

use serde::{Deserialize, Serialize};

use cohort_types::{CoreId, Cycles};

/// Per-core measurements.
///
/// `total_latency` is the **experimental WCML** of the core's task: the sum
/// of all per-access memory latencies (hit latency for hits, issue-to-fill
/// for misses) — the solid bars of Figure 5. `worst_request` is the largest
/// observed per-request latency, comparable against the Eq. 1 bound.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Number of private-cache hits.
    pub hits: u64,
    /// Number of misses (including upgrades).
    pub misses: u64,
    /// Number of misses that were upgrades (store on an own Shared copy).
    pub upgrades: u64,
    /// Sum of per-access latencies: the experimental WCML.
    pub total_latency: Cycles,
    /// Largest observed per-request miss latency (experimental WCL).
    pub worst_request: Cycles,
    /// Cycle at which the core's last access completed.
    pub finish: Cycles,
}

impl CoreStats {
    /// Total accesses performed (hits + misses).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]` (0 for an empty run).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Mean per-access latency in cycles (0 for an empty run).
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.total_latency.get() as f64 / self.accesses() as f64
        }
    }
}

/// Whole-run measurements.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Per-core statistics, indexed by core.
    pub cores: Vec<CoreStats>,
    /// Cycle at which the simulation finished (all traces drained).
    pub cycles: Cycles,
    /// Cycles the shared bus was occupied.
    pub bus_busy: Cycles,
    /// Number of request broadcasts (including the broadcast phase of
    /// fused transactions).
    pub broadcasts: u64,
    /// Number of data transfers.
    pub transfers: u64,
    /// LLC misses (only non-zero with a finite LLC).
    pub llc_misses: u64,
    /// Lines back-invalidated out of private caches by inclusive-LLC
    /// evictions (only non-zero with a finite LLC).
    pub back_invalidations: u64,
    /// L1 lines evicted by the replacement policy.
    pub evictions: u64,
}

impl SimStats {
    /// Per-core stats by id.
    ///
    /// # Panics
    ///
    /// Panics if the core does not exist.
    #[must_use]
    pub fn core(&self, id: CoreId) -> &CoreStats {
        &self.cores[id.index()]
    }

    /// Overall execution time: the completion cycle of the slowest core
    /// (Figure 6's metric).
    #[must_use]
    pub fn execution_time(&self) -> Cycles {
        self.cores.iter().map(|c| c.finish).max().unwrap_or(Cycles::ZERO)
    }

    /// Bus utilisation in `[0, 1]`.
    #[must_use]
    pub fn bus_utilisation(&self) -> f64 {
        if self.cycles.get() == 0 {
            0.0
        } else {
            self.bus_busy.get() as f64 / self.cycles.get() as f64
        }
    }

    /// Private-cache hits summed over every core.
    #[must_use]
    pub fn total_hits(&self) -> u64 {
        self.cores.iter().map(|c| c.hits).sum()
    }

    /// Misses (including upgrades) summed over every core.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.cores.iter().map(|c| c.misses).sum()
    }

    /// Total accesses performed across the whole system.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.total_hits() + self.total_misses()
    }

    /// System-wide hit ratio in `[0, 1]` (0 for an empty run).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.total_accesses() == 0 {
            0.0
        } else {
            self.total_hits() as f64 / self.total_accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let c = CoreStats {
            hits: 3,
            misses: 1,
            upgrades: 0,
            total_latency: Cycles::new(103),
            worst_request: Cycles::new(100),
            finish: Cycles::new(200),
        };
        assert_eq!(c.accesses(), 4);
        assert!((c.hit_ratio() - 0.75).abs() < 1e-12);
        assert!((c.mean_latency() - 25.75).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_ratios() {
        let c = CoreStats::default();
        assert_eq!(c.hit_ratio(), 0.0);
        assert_eq!(c.mean_latency(), 0.0);
    }

    #[test]
    fn execution_time_is_slowest_core() {
        let stats = SimStats {
            cores: vec![
                CoreStats { finish: Cycles::new(10), ..Default::default() },
                CoreStats { finish: Cycles::new(99), ..Default::default() },
            ],
            cycles: Cycles::new(100),
            bus_busy: Cycles::new(50),
            ..Default::default()
        };
        assert_eq!(stats.execution_time().get(), 99);
        assert!((stats.bus_utilisation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn whole_system_aggregates() {
        let stats = SimStats {
            cores: vec![
                CoreStats { hits: 6, misses: 2, ..Default::default() },
                CoreStats { hits: 3, misses: 1, ..Default::default() },
            ],
            ..Default::default()
        };
        assert_eq!(stats.total_hits(), 9);
        assert_eq!(stats.total_misses(), 3);
        assert_eq!(stats.total_accesses(), 12);
        assert!((stats.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(SimStats::default().hit_ratio(), 0.0);
    }
}
