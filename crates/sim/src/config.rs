//! Simulator configuration: cache geometry, LLC model, arbitration policy,
//! data path and per-core coherence timers.

use serde::{Deserialize, Serialize};

use cohort_types::{Error, LatencyConfig, Result, TimerValue};

/// Geometry of a set-associative cache.
///
/// The paper's private caches are 16 KiB direct-mapped with 64 B lines
/// ([`CacheGeometry::paper_l1`]); the LLC is 8-way set-associative.
///
/// # Examples
///
/// ```
/// use cohort_sim::CacheGeometry;
///
/// let l1 = CacheGeometry::paper_l1();
/// assert_eq!(l1.sets(), 256);
/// assert_eq!(l1.ways, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub ways: u64,
}

impl CacheGeometry {
    /// The paper's private-cache geometry: 16 KiB, 64 B lines, direct-mapped.
    #[must_use]
    pub const fn paper_l1() -> Self {
        CacheGeometry { size_bytes: 16 * 1024, line_bytes: 64, ways: 1 }
    }

    /// The paper's LLC geometry (used in non-perfect mode): 8-way, 64 B
    /// lines, 256 KiB.
    #[must_use]
    pub const fn paper_llc() -> Self {
        CacheGeometry { size_bytes: 256 * 1024, line_bytes: 64, ways: 8 }
    }

    /// Creates a geometry, validating the invariants the indexing relies on.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the line size is not a power of
    /// two, the capacity is not a multiple of `line_bytes × ways`, or any
    /// field is zero.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: u64) -> Result<Self> {
        let geom = CacheGeometry { size_bytes, line_bytes, ways };
        geom.validate()?;
        Ok(geom)
    }

    /// Number of sets.
    #[must_use]
    pub const fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    /// Total number of lines the cache can hold.
    #[must_use]
    pub const fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.size_bytes == 0 || self.line_bytes == 0 || self.ways == 0 {
            return Err(Error::InvalidConfig("cache geometry fields must be positive".into()));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(Error::InvalidConfig("line size must be a power of two".into()));
        }
        if !self.size_bytes.is_multiple_of(self.line_bytes * self.ways) {
            return Err(Error::InvalidConfig(
                "cache size must be a multiple of line size × ways".into(),
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(Error::InvalidConfig("number of sets must be a power of two".into()));
        }
        Ok(())
    }
}

/// The shared last-level cache model.
///
/// The paper's headline results use a **perfect** LLC ("to eliminate the
/// interference from the off-chip main memory and focus on the overheads due
/// to coherence interference"); footnote 1 reports that a non-perfect LLC
/// with a fixed-latency main memory shows the same observations, which the
/// [`LlcModel::Finite`] variant reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LlcModel {
    /// Every LLC access hits; infinite capacity.
    Perfect,
    /// Real tags with LRU replacement and back-invalidation; misses pay the
    /// `memory` latency of the [`LatencyConfig`].
    Finite(CacheGeometry),
}

impl LlcModel {
    /// Returns `true` for the perfect model.
    #[must_use]
    pub const fn is_perfect(&self) -> bool {
        matches!(self, LlcModel::Perfect)
    }
}

/// The stable-state repertoire of the snooping protocol backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolFlavor {
    /// The paper's baseline: Modified / Shared / Invalid.
    Msi,
    /// Extension: adds the Exclusive state — an unshared read fill grants
    /// E, and the first store upgrades silently (no bus transaction).
    Mesi,
}

/// How data moves between private caches on an ownership transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPath {
    /// Direct cache-to-cache transfer (CoHoRT, MSI, PENDULUM).
    CacheToCache,
    /// Transfers are staged through the shared memory, doubling the data
    /// occupancy of a core-sourced hand-over (PCC-style predictable
    /// coherence keeps the shared memory the single ordering point).
    ViaSharedMemory,
}

/// The bus arbitration policy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArbiterKind {
    /// Round-Robin Oldest-First (RROF, Mirosanlou et al., ECRTS 2022): cyclic order, but a core keeps its
    /// position until its *oldest* request is served (CoHoRT's arbiter).
    Rrof,
    /// Plain round-robin: a core moves to the back after any grant.
    RoundRobin,
    /// Time-division multiplexing over `critical` cores with slot width
    /// `SW`; non-critical cores may ride slots with no critical candidate
    /// (PENDULUM's arbiter).
    Tdm {
        /// Which cores own TDM slots (must contain at least one `true`).
        critical: Vec<bool>,
    },
    /// First-come first-served by request issue time (COTS baseline used to
    /// normalize Figure 6).
    Fcfs,
}

/// Full simulator configuration.
///
/// Use [`SimConfig::builder`] to construct one; the builder validates the
/// cross-field invariants.
///
/// # Examples
///
/// ```
/// use cohort_sim::{ArbiterKind, SimConfig};
/// use cohort_types::TimerValue;
///
/// let config = SimConfig::builder(4)
///     .timer(0, TimerValue::timed(300)?)
///     .timer(2, TimerValue::MSI)
///     .arbiter(ArbiterKind::Rrof)
///     .build()?;
/// assert_eq!(config.cores(), 4);
/// assert!(config.timers()[0].is_timed());
/// assert!(config.timers()[2].is_msi());
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    cores: usize,
    latency: LatencyConfig,
    l1: CacheGeometry,
    llc: LlcModel,
    arbiter: ArbiterKind,
    data_path: DataPath,
    timers: Vec<TimerValue>,
    mshr_per_core: usize,
    waiter_priority: Option<Vec<bool>>,
    flavor: ProtocolFlavor,
}

impl SimConfig {
    /// Starts building a configuration for an `cores`-core system with the
    /// paper's defaults: paper latencies, 16 KiB direct-mapped L1s, perfect
    /// LLC, RROF arbitration, cache-to-cache data path, all cores MSI
    /// (θ = −1), one MSHR per core.
    #[must_use]
    pub fn builder(cores: usize) -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig {
                cores,
                latency: LatencyConfig::paper(),
                l1: CacheGeometry::paper_l1(),
                llc: LlcModel::Perfect,
                arbiter: ArbiterKind::Rrof,
                data_path: DataPath::CacheToCache,
                timers: vec![TimerValue::MSI; cores],
                mshr_per_core: 1,
                waiter_priority: None,
                flavor: ProtocolFlavor::Msi,
            },
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The latency parameters.
    #[must_use]
    pub fn latency(&self) -> &LatencyConfig {
        &self.latency
    }

    /// The private-cache geometry.
    #[must_use]
    pub fn l1(&self) -> &CacheGeometry {
        &self.l1
    }

    /// The LLC model.
    #[must_use]
    pub fn llc(&self) -> &LlcModel {
        &self.llc
    }

    /// The arbitration policy.
    #[must_use]
    pub fn arbiter(&self) -> &ArbiterKind {
        &self.arbiter
    }

    /// The inter-cache data path.
    #[must_use]
    pub fn data_path(&self) -> DataPath {
        self.data_path
    }

    /// The per-core timer threshold registers θ.
    #[must_use]
    pub fn timers(&self) -> &[TimerValue] {
        &self.timers
    }

    /// MSHR entries per core (outstanding misses).
    #[must_use]
    pub fn mshr_per_core(&self) -> usize {
        self.mshr_per_core
    }

    /// The protocol flavor (MSI per the paper, or the MESI extension).
    #[must_use]
    pub fn flavor(&self) -> ProtocolFlavor {
        self.flavor
    }

    /// Criticality mask for priority waiter queues, if enabled: critical
    /// cores' coherence requests are served ahead of queued non-critical
    /// waiters (PENDULUM's mechanism for bounding Cr requests while giving
    /// nCr cores no guarantees).
    #[must_use]
    pub fn waiter_priority(&self) -> Option<&[bool]> {
        self.waiter_priority.as_deref()
    }

    /// Returns a copy with different timers (used by mode switching and the
    /// optimization engine's candidate evaluation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the slice length does not match
    /// the core count.
    pub fn with_timers(&self, timers: &[TimerValue]) -> Result<SimConfig> {
        if timers.len() != self.cores {
            return Err(Error::InvalidConfig(format!(
                "expected {} timers, got {}",
                self.cores,
                timers.len()
            )));
        }
        let mut config = self.clone();
        config.timers = timers.to_vec();
        Ok(config)
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the latency parameters.
    #[must_use]
    pub fn latency(mut self, latency: LatencyConfig) -> Self {
        self.config.latency = latency;
        self
    }

    /// Sets the private-cache geometry.
    #[must_use]
    pub fn l1(mut self, geometry: CacheGeometry) -> Self {
        self.config.l1 = geometry;
        self
    }

    /// Sets the LLC model.
    #[must_use]
    pub fn llc(mut self, llc: LlcModel) -> Self {
        self.config.llc = llc;
        self
    }

    /// Sets the arbitration policy.
    #[must_use]
    pub fn arbiter(mut self, arbiter: ArbiterKind) -> Self {
        self.config.arbiter = arbiter;
        self
    }

    /// Sets the inter-cache data path.
    #[must_use]
    pub fn data_path(mut self, path: DataPath) -> Self {
        self.config.data_path = path;
        self
    }

    /// Sets one core's timer threshold register.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range (builder misuse is a programming
    /// error; runtime re-configuration goes through
    /// [`SimConfig::with_timers`] which returns an error instead).
    #[must_use]
    pub fn timer(mut self, core: usize, value: TimerValue) -> Self {
        assert!(core < self.config.cores, "core {core} out of range");
        self.config.timers[core] = value;
        self
    }

    /// Sets all cores' timers at once.
    #[must_use]
    pub fn timers(mut self, timers: Vec<TimerValue>) -> Self {
        self.config.timers = timers;
        self
    }

    /// Sets the MSHR capacity per core.
    ///
    /// The timing analysis (Eq. 1/2/3) assumes **one** outstanding request
    /// per core; with deeper MSHRs a request's measured latency includes
    /// queueing behind the core's own older requests, which no bound
    /// charges. Values above 1 are a throughput extension, outside the
    /// analysable configuration (see the MSHR ablation).
    #[must_use]
    pub fn mshr_per_core(mut self, entries: usize) -> Self {
        self.config.mshr_per_core = entries;
        self
    }

    /// Selects the protocol flavor (defaults to the paper's MSI).
    #[must_use]
    pub fn flavor(mut self, flavor: ProtocolFlavor) -> Self {
        self.config.flavor = flavor;
        self
    }

    /// Enables criticality-priority waiter queues: requests from cores
    /// marked `true` are enqueued ahead of waiting non-critical requests
    /// (used by the PENDULUM baseline).
    #[must_use]
    pub fn waiter_priority(mut self, critical: Vec<bool>) -> Self {
        self.config.waiter_priority = Some(critical);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the system has no cores, the
    /// timer vector length mismatches the core count, the TDM critical mask
    /// is malformed, the MSHR capacity is zero, or a cache geometry is
    /// invalid.
    pub fn build(self) -> Result<SimConfig> {
        let c = self.config;
        if c.cores == 0 {
            return Err(Error::InvalidConfig("a system needs at least one core".into()));
        }
        if c.timers.len() != c.cores {
            return Err(Error::InvalidConfig(format!(
                "expected {} timers, got {}",
                c.cores,
                c.timers.len()
            )));
        }
        if c.mshr_per_core == 0 {
            return Err(Error::InvalidConfig("each core needs at least one MSHR entry".into()));
        }
        c.l1.validate()?;
        if let LlcModel::Finite(geom) = &c.llc {
            geom.validate()?;
            if geom.line_bytes != c.l1.line_bytes {
                return Err(Error::InvalidConfig("LLC and L1 must agree on the line size".into()));
            }
        }
        if let ArbiterKind::Tdm { critical } = &c.arbiter {
            if critical.len() != c.cores {
                return Err(Error::InvalidConfig(format!(
                    "TDM critical mask must cover all {} cores",
                    c.cores
                )));
            }
            if !critical.iter().any(|&b| b) {
                return Err(Error::InvalidConfig(
                    "TDM needs at least one critical core owning a slot".into(),
                ));
            }
        }
        if let Some(mask) = &c.waiter_priority {
            if mask.len() != c.cores {
                return Err(Error::InvalidConfig(format!(
                    "waiter-priority mask must cover all {} cores",
                    c.cores
                )));
            }
            if let ArbiterKind::Tdm { critical } = &c.arbiter {
                if critical != mask {
                    return Err(Error::InvalidConfig(
                        "waiter-priority mask must match the TDM critical mask —                          disagreeing criticality views are never intended"
                            .into(),
                    ));
                }
            }
        }
        if c.cores > 64 {
            return Err(Error::InvalidConfig(
                "the sharer bitmask supports at most 64 cores".into(),
            ));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        let l1 = CacheGeometry::paper_l1();
        assert_eq!(l1.sets(), 256);
        assert_eq!(l1.lines(), 256);
        let llc = CacheGeometry::paper_llc();
        assert_eq!(llc.ways, 8);
        assert_eq!(llc.sets(), 512);
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheGeometry::new(16 * 1024, 64, 1).is_ok());
        assert!(CacheGeometry::new(0, 64, 1).is_err());
        assert!(CacheGeometry::new(16 * 1024, 48, 1).is_err(), "non power-of-two line");
        assert!(CacheGeometry::new(16 * 1024 + 1, 64, 1).is_err(), "not a multiple");
        assert!(CacheGeometry::new(64 * 3, 64, 1).is_err(), "sets not a power of two");
    }

    #[test]
    fn builder_defaults_are_paper_defaults() {
        let c = SimConfig::builder(4).build().unwrap();
        assert_eq!(c.cores(), 4);
        assert_eq!(c.latency().slot_width().get(), 54);
        assert!(c.llc().is_perfect());
        assert_eq!(c.arbiter(), &ArbiterKind::Rrof);
        assert_eq!(c.data_path(), DataPath::CacheToCache);
        assert!(c.timers().iter().all(|t| t.is_msi()));
        assert_eq!(c.mshr_per_core(), 1);
    }

    #[test]
    fn builder_rejects_invalid() {
        assert!(SimConfig::builder(0).build().is_err());
        assert!(SimConfig::builder(2).mshr_per_core(0).build().is_err());
        assert!(SimConfig::builder(2)
            .arbiter(ArbiterKind::Tdm { critical: vec![true] })
            .build()
            .is_err());
        assert!(SimConfig::builder(2)
            .arbiter(ArbiterKind::Tdm { critical: vec![false, false] })
            .build()
            .is_err());
        assert!(SimConfig::builder(65).build().is_err());
        let mismatched_llc = CacheGeometry::new(256 * 1024, 128, 8).unwrap();
        assert!(SimConfig::builder(2).llc(LlcModel::Finite(mismatched_llc)).build().is_err());
    }

    #[test]
    fn with_timers_checks_length() {
        let c = SimConfig::builder(2).build().unwrap();
        assert!(c.with_timers(&[TimerValue::MSI]).is_err());
        let t = TimerValue::timed(20).unwrap();
        let c2 = c.with_timers(&[t, t]).unwrap();
        assert_eq!(c2.timers(), &[t, t]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_timer_bounds_checked() {
        let _ = SimConfig::builder(2).timer(5, TimerValue::MSI);
    }
}
