//! Dev tool: fuzz the analytical bounds (Eq. 1, PCC, PENDULUM) against the
//! simulator at scale. Prints the worst margin seen; exits non-zero output
//! on a violation.
use cohort_sim::{
    ArbiterKind, CacheGeometry, DataPath, LlcModel, ProtocolFlavor, SimBuilder, SimConfig,
};
use cohort_trace::{AccessKind, Trace, TraceOp, Workload};
use cohort_types::{Cycles, LineAddr, TimerValue};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn workload(rng: &mut ChaCha8Rng, cores: usize) -> Workload {
    let traces: Vec<Trace> = (0..cores)
        .map(|_| {
            let len = rng.gen_range(1..120);
            let mut ops = Vec::new();
            while ops.len() < len {
                let line = rng.gen_range(0..14u64);
                let store = rng.gen_bool(0.5);
                ops.push(TraceOp::new(
                    LineAddr::new(line),
                    if store { AccessKind::Store } else { AccessKind::Load },
                    Cycles::new(rng.gen_range(0..8)),
                ));
                // Burst follow-ups.
                for _ in 0..rng.gen_range(0..4) {
                    ops.push(TraceOp::new(LineAddr::new(line), AccessKind::Load, Cycles::new(1)));
                }
            }
            Trace::from_ops(ops)
        })
        .collect();
    Workload::new("fuzz", traces).unwrap()
}

fn main() {
    // Derived from the same LatencyConfig the simulator runs with, so a
    // latency retune keeps the fuzzer honest. (The bound *formulas* are
    // intentionally inlined: cohort-analysis sits above cohort-sim in the
    // crate DAG; the root integration tests cross-check the library
    // formulas against the simulator.)
    let lat = cohort_types::LatencyConfig::paper();
    let sw = lat.slot_width().get();
    let mut violations = 0u64;
    for seed in 0..30000u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cores = [2usize, 3, 4, 6][(seed % 4) as usize];
        let w = workload(&mut rng, cores);
        match seed % 3 {
            0 => {
                // CoHoRT / Eq. 1
                let timers: Vec<TimerValue> = (0..cores)
                    .map(|_| {
                        if rng.gen_bool(0.4) {
                            TimerValue::MSI
                        } else {
                            TimerValue::timed(rng.gen_range(1..=500)).unwrap()
                        }
                    })
                    .collect();
                let flavor =
                    if rng.gen_bool(0.5) { ProtocolFlavor::Mesi } else { ProtocolFlavor::Msi };
                let config = SimConfig::builder(cores)
                    .timers(timers.clone())
                    .flavor(flavor)
                    .build()
                    .unwrap();
                let stats = SimBuilder::new(config, &w).build().unwrap().run().unwrap();
                for i in 0..cores {
                    let theta_terms: u64 = (0..cores)
                        .filter(|&j| j != i)
                        .filter_map(|j| timers[j].theta().map(|t| t + sw))
                        .sum();
                    let bound = sw * cores as u64 + theta_terms;
                    if stats.cores[i].worst_request.get() > bound {
                        violations += 1;
                        println!(
                            "EQ1 seed {seed} core {i}: {} > {bound}",
                            stats.cores[i].worst_request.get()
                        );
                    }
                }
            }
            1 => {
                // PCC
                let config =
                    SimConfig::builder(cores).data_path(DataPath::ViaSharedMemory).build().unwrap();
                let stats = SimBuilder::new(config, &w).build().unwrap().run().unwrap();
                let staged = lat.request.get() + 2 * lat.data.get();
                let bound = 2 * staged + (cores as u64 - 1) * 2 * lat.data.get();
                for i in 0..cores {
                    if stats.cores[i].worst_request.get() > bound {
                        violations += 1;
                        println!(
                            "PCC seed {seed} core {i}: {} > {bound}",
                            stats.cores[i].worst_request.get()
                        );
                    }
                }
            }
            _ => {
                // PENDULUM, sometimes with a finite LLC + DRAM latency
                // (the TDM slots must stretch to the effective slot width).
                let n_cr = rng.gen_range(1..=cores);
                let critical: Vec<bool> = (0..cores).map(|i| i < n_cr).collect();
                let theta = rng.gen_range(1..=400u64);
                let timers = vec![TimerValue::timed(theta).unwrap(); cores];
                let (llc, memory) = if rng.gen_bool(0.3) {
                    (LlcModel::Finite(CacheGeometry::new(8 * 64, 64, 2).unwrap()), 100)
                } else {
                    (LlcModel::Perfect, 0)
                };
                let config = SimConfig::builder(cores)
                    .timers(timers)
                    .arbiter(ArbiterKind::Tdm { critical: critical.clone() })
                    .waiter_priority(critical.clone())
                    .llc(llc)
                    .latency(cohort_types::LatencyConfig::paper().with_memory(memory))
                    .build()
                    .unwrap();
                let stats = SimBuilder::new(config, &w).build().unwrap().run().unwrap();
                let sw_eff = sw + memory;
                let period = sw_eff * n_cr as u64;
                let bound = period
                    + (n_cr as u64 - 1) * (theta + 2 * period)
                    + (cores - n_cr) as u64 * (theta + period)
                    + sw_eff;
                for i in 0..n_cr {
                    if stats.cores[i].worst_request.get() > bound {
                        violations += 1;
                        println!(
                            "PEND seed {seed} core {i}: {} > {bound} (n_cr={n_cr} θ={theta})",
                            stats.cores[i].worst_request.get()
                        );
                    }
                }
            }
        }
        if violations > 10 {
            break;
        }
    }
    println!("violations: {violations}");
}
