//! Cycle-exact behavioural tests of the simulation engine, hand-computed
//! from the paper's latencies (hit 1, request 4, data 50, SW = 54).

use cohort_sim::{
    ArbiterKind, CacheGeometry, DataPath, EventKind, EventLogProbe, LlcModel, SimConfig, SimStats,
    Simulator,
};
use cohort_trace::{micro, Trace, TraceOp, Workload};
use cohort_types::{Cycles, TimerValue};

fn timed(theta: u64) -> TimerValue {
    TimerValue::timed(theta).unwrap()
}

fn run(config: SimConfig, workload: &Workload) -> SimStats {
    let mut sim = Simulator::new(config, workload).expect("valid setup");
    let stats = sim.run().expect("run completes");
    sim.validate_coherence().expect("coherence invariants hold at the end");
    stats
}

#[test]
fn cold_miss_costs_one_slot() {
    // A single load from the shared memory: request (4) + data (50) = 54.
    let w = Workload::new("one-load", vec![Trace::from_ops(vec![TraceOp::load(0)])]).unwrap();
    let stats = run(SimConfig::builder(1).build().unwrap(), &w);
    assert_eq!(stats.cores[0].misses, 1);
    assert_eq!(stats.cores[0].hits, 0);
    assert_eq!(stats.cores[0].worst_request.get(), 54);
    assert_eq!(stats.cores[0].total_latency.get(), 54);
    assert_eq!(stats.cores[0].finish.get(), 54);
}

#[test]
fn store_then_load_hits_in_private_cache() {
    let w = Workload::new(
        "store-load",
        vec![Trace::from_ops(vec![TraceOp::store(0), TraceOp::load(0)])],
    )
    .unwrap();
    let stats = run(SimConfig::builder(1).build().unwrap(), &w);
    assert_eq!(stats.cores[0].misses, 1);
    assert_eq!(stats.cores[0].hits, 1);
    // Miss fills at 54; the dependent load hits in one more cycle.
    assert_eq!(stats.cores[0].total_latency.get(), 55);
    assert_eq!(stats.cores[0].finish.get(), 55);
}

#[test]
fn load_then_store_is_an_upgrade_miss() {
    let w = Workload::new(
        "load-store",
        vec![Trace::from_ops(vec![TraceOp::load(0), TraceOp::store(0)])],
    )
    .unwrap();
    let stats = run(SimConfig::builder(1).build().unwrap(), &w);
    assert_eq!(stats.cores[0].misses, 2, "the store upgrades S → M via the bus");
    assert_eq!(stats.cores[0].upgrades, 1);
    assert_eq!(stats.cores[0].hits, 0);
}

#[test]
fn msi_ping_pong_hands_over_in_one_slot() {
    // Two MSI cores store the same line back-to-back. The second request
    // snoops the first owner, which releases immediately (θ = −1), so the
    // hand-over fuses into one slot: c1's latency is exactly 2·SW (it also
    // waited for c0's slot).
    let w = micro::ping_pong(2, 1);
    let stats = run(SimConfig::builder(2).build().unwrap(), &w);
    assert_eq!(stats.cores[0].worst_request.get(), 54);
    assert_eq!(stats.cores[1].worst_request.get(), 108);
}

#[test]
fn timed_owner_delays_handover_until_expiry() {
    // c0 (θ = 40) owns the line at t = 54; c1's request snoops at t = 58;
    // the first expiry is 54 + 40 = 94; the transfer runs 94..144.
    let w = micro::ping_pong(2, 1);
    let config = SimConfig::builder(2).timer(0, timed(40)).build().unwrap();
    let stats = run(config, &w);
    assert_eq!(stats.cores[1].worst_request.get(), 144);
}

#[test]
fn timer_protects_owner_hits_figure1() {
    // The Figure-1 scenario: under MSI, c0's revisit of A misses because c1
    // stole the line; under time-based coherence the revisit hits. The
    // revisit gap (100) places the revisit after c1's snoop (cycle 58) but
    // well inside c0's 200-cycle timer window.
    let w = micro::figure1(100);

    let msi = run(SimConfig::builder(2).build().unwrap(), &w);
    assert_eq!(msi.cores[0].hits, 0, "snooping: revisit misses");
    assert_eq!(msi.cores[0].misses, 2);

    let cohort_config = SimConfig::builder(2).timer(0, timed(200)).build().unwrap();
    let timed_stats = run(cohort_config, &w);
    assert_eq!(timed_stats.cores[0].hits, 1, "time-based: revisit hits");
    assert_eq!(timed_stats.cores[0].misses, 1);
    // ...at the cost of a larger miss latency for the interferer c1.
    assert!(timed_stats.cores[1].worst_request > msi.cores[1].worst_request);
}

#[test]
fn msi_special_value_reduces_to_plain_msi() {
    // A core with θ = −1 must behave exactly like a plain MSI core: same
    // stats for the whole system whichever way we spell the configuration.
    let w = micro::random_shared(2, 32, 300, 0.4, 11);
    let explicit = run(SimConfig::builder(2).timers(vec![TimerValue::MSI; 2]).build().unwrap(), &w);
    let default = run(SimConfig::builder(2).build().unwrap(), &w);
    assert_eq!(explicit, default);
}

#[test]
fn hits_proceed_under_an_outstanding_miss() {
    // Core 0: a miss to line 0, then 3 hits to line 1 (prefilled by an
    // initial access), all of which complete during the miss.
    let ops = vec![
        TraceOp::load(1), // cold miss, fills line 1 at t = 54
        TraceOp::load(0), // miss issued at 55
        TraceOp::load(1), // hits at 56..58 while the miss is in flight
        TraceOp::load(1),
        TraceOp::load(1),
    ];
    let w = Workload::new("hom", vec![Trace::from_ops(ops)]).unwrap();
    let stats = run(SimConfig::builder(1).build().unwrap(), &w);
    assert_eq!(stats.cores[0].hits, 3);
    assert_eq!(stats.cores[0].misses, 2);
    // Second miss: issued the moment the first fill lands (54), fills at
    // 54 + 54 = 108; the line-1 hits complete underneath it.
    assert_eq!(stats.cores[0].finish.get(), 108);
}

#[test]
fn second_miss_stalls_with_one_mshr() {
    let ops = vec![TraceOp::load(0), TraceOp::load(1), TraceOp::load(2)];
    let w = Workload::new("stall", vec![Trace::from_ops(ops)]).unwrap();
    let stats = run(SimConfig::builder(1).build().unwrap(), &w);
    assert_eq!(stats.cores[0].misses, 3);
    // Strictly serialized: each miss issues the moment the previous fill
    // lands, so the three slots pack back-to-back.
    assert_eq!(stats.cores[0].finish.get(), 3 * 54);
}

#[test]
fn rrof_example_operation_figure4() {
    // The §III-C example: c0, c1, c3 timed; c2 MSI. All four write A.
    let config = SimConfig::builder(4)
        .timer(0, timed(40))
        .timer(1, timed(40))
        .timer(3, timed(40))
        .build()
        .unwrap();
    let w = micro::figure4();
    let mut sim = Simulator::with_probe(config, &w, EventLogProbe::new()).unwrap();
    sim.run().unwrap();
    // Fill order must follow the RROF broadcast order: c0, c1, c2, c3.
    let fills: Vec<usize> = sim
        .probe()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Fill { core, line, .. } if line.raw() == 0x40 => Some(*core),
            _ => None,
        })
        .collect();
    assert_eq!(fills, vec![0, 1, 2, 3]);

    // c2 runs MSI, so it hands A to c3 immediately: the gap between c2's
    // fill and c3's fill is at most one data transfer + one request slot,
    // while c1 had to wait out θ0 and c2 had to wait out θ1.
    let fill_time = |core: usize| {
        sim.probe()
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Fill { core: c, line, .. } if *c == core && line.raw() == 0x40 => {
                    Some(e.cycle.get())
                }
                _ => None,
            })
            .unwrap()
    };
    let (f0, f1, f2, f3) = (fill_time(0), fill_time(1), fill_time(2), fill_time(3));
    assert!(f1 - f0 >= 40, "c1 waited for θ0");
    assert!(f2 - f1 >= 40, "c2 waited for θ1");
    assert!(f3 - f2 < 40 + 54, "c2 (MSI) handed over without a timer wait");
    assert_eq!(f3 - f2, 50, "immediate hand-over costs one data transfer");
}

#[test]
fn tdm_produces_idle_slots() {
    // Same workload under RROF and TDM: TDM's slot alignment can only slow
    // things down (PENDULUM's performance penalty in Figure 6).
    let w = micro::random_shared(2, 16, 200, 0.5, 7);
    let rrof = run(SimConfig::builder(2).build().unwrap(), &w);
    let tdm = run(
        SimConfig::builder(2)
            .arbiter(ArbiterKind::Tdm { critical: vec![true, true] })
            .build()
            .unwrap(),
        &w,
    );
    assert!(tdm.execution_time() >= rrof.execution_time());
}

#[test]
fn tdm_starves_noncritical_cores_under_load() {
    // Critical core 0 floods the bus; non-critical core 1 only rides idle
    // slots, so its worst-case latency explodes compared to RROF.
    let w = micro::ping_pong(2, 20);
    let tdm = run(
        SimConfig::builder(2)
            .arbiter(ArbiterKind::Tdm { critical: vec![true, false] })
            .build()
            .unwrap(),
        &w,
    );
    let rrof = run(SimConfig::builder(2).build().unwrap(), &w);
    assert!(tdm.cores[1].worst_request >= rrof.cores[1].worst_request);
    assert!(tdm.cores[0].accesses() == 20 && tdm.cores[1].accesses() == 20);
}

#[test]
fn via_shared_memory_doubles_handover_occupancy() {
    // PCC-style data path: core-to-core hand-overs stage through the LLC.
    let w = micro::ping_pong(2, 2);
    let direct = run(SimConfig::builder(2).build().unwrap(), &w);
    let staged =
        run(SimConfig::builder(2).data_path(DataPath::ViaSharedMemory).build().unwrap(), &w);
    assert!(staged.cores[1].worst_request > direct.cores[1].worst_request);
    assert!(staged.execution_time() > direct.execution_time());
    // Cold fills from the LLC itself are unaffected.
    assert_eq!(staged.cores[0].worst_request.get(), direct.cores[0].worst_request.get());
}

#[test]
fn finite_llc_pays_memory_latency_and_back_invalidates() {
    // A tiny 2-set × 1-way LLC forces misses and back-invalidations.
    let tiny = CacheGeometry::new(2 * 64, 64, 1).unwrap();
    let ops: Vec<TraceOp> = (0..8).map(TraceOp::load).collect();
    let w = Workload::new("llc-thrash", vec![Trace::from_ops(ops)]).unwrap();
    let config = SimConfig::builder(1)
        .llc(LlcModel::Finite(tiny))
        .latency(cohort_types::LatencyConfig::paper().with_memory(100))
        .build()
        .unwrap();
    let stats = run(config, &w);
    assert_eq!(stats.llc_misses, 8, "every cold line misses the tiny LLC");
    assert!(stats.back_invalidations >= 6, "inclusion evicts L1 copies");
    assert_eq!(stats.cores[0].worst_request.get(), 54 + 100);
}

#[test]
fn perfect_llc_never_misses() {
    let w = micro::streaming(2, 100);
    let stats = run(SimConfig::builder(2).build().unwrap(), &w);
    assert_eq!(stats.llc_misses, 0);
    assert_eq!(stats.back_invalidations, 0);
}

#[test]
fn l1_conflicts_evict_with_direct_mapping() {
    // 256 sets: lines 0 and 256 conflict. The final revisit is delayed
    // past the conflicting fill (cycle 108), so it must miss again.
    let ops = vec![TraceOp::load(0), TraceOp::load(256), TraceOp::load(0).after(200)];
    let w = Workload::new("conflict", vec![Trace::from_ops(ops)]).unwrap();
    let stats = run(SimConfig::builder(1).build().unwrap(), &w);
    assert_eq!(stats.cores[0].misses, 3);
    assert_eq!(stats.evictions, 2);
}

#[test]
fn mid_run_timer_switch_changes_behaviour() {
    // c0 holds a line with a huge timer; at cycle 200 a mode switch drops
    // it to MSI, after which c1's pending request completes quickly.
    let c0 = Trace::from_ops(vec![TraceOp::store(0)]);
    let c1 = Trace::from_ops(vec![TraceOp::store(0).after(60)]);
    let w = Workload::new("switch", vec![c0, c1]).unwrap();
    let config = SimConfig::builder(2).timer(0, timed(60_000)).build().unwrap();

    // Without the switch c1 waits for the 60 000-cycle expiry.
    let no_switch = run(config.clone(), &w);
    assert!(no_switch.cores[1].worst_request.get() > 50_000);

    // With the switch, the hand-over happens shortly after cycle 200.
    let mut sim = Simulator::new(config, &w).unwrap();
    sim.schedule_timer_switch(Cycles::new(200), vec![TimerValue::MSI; 2]).unwrap();
    let switched = sim.run().unwrap();
    assert!(
        switched.cores[1].worst_request.get() < 400,
        "switch to MSI released the line: {}",
        switched.cores[1].worst_request
    );
}

#[test]
fn switch_scheduling_validation() {
    let w = micro::ping_pong(2, 1);
    let mut sim = Simulator::new(SimConfig::builder(2).build().unwrap(), &w).unwrap();
    assert!(sim.schedule_timer_switch(Cycles::new(10), vec![TimerValue::MSI]).is_err());
    sim.run().unwrap();
    let past = sim.now().saturating_sub(Cycles::new(1));
    assert!(sim.schedule_timer_switch(past, vec![TimerValue::MSI; 2]).is_err());
}

#[test]
fn read_sharing_is_peaceful() {
    // Many cores loading the same line never invalidate each other: every
    // core misses once and then hits.
    let traces = (0..4)
        .map(|_| Trace::from_ops(vec![TraceOp::load(0), TraceOp::load(0), TraceOp::load(0)]))
        .collect();
    let w = Workload::new("read-share", traces).unwrap();
    let stats = run(SimConfig::builder(4).timers(vec![timed(100); 4]).build().unwrap(), &w);
    for core in &stats.cores {
        assert_eq!(core.misses, 1);
        assert_eq!(core.hits, 2);
    }
}

#[test]
fn gets_downgrades_modified_owner() {
    // c0 stores, c1 loads the line: c0 is downgraded, not invalidated, so a
    // subsequent c0 load still hits, but a c0 store must upgrade.
    let c0 = Trace::from_ops(vec![
        TraceOp::store(0),
        TraceOp::load(0).after(400), // after c1's GetS: still a hit (Shared)
        TraceOp::store(0),           // upgrade miss
    ]);
    let c1 = Trace::from_ops(vec![TraceOp::load(0).after(20)]);
    let w = Workload::new("downgrade", vec![c0, c1]).unwrap();
    let stats = run(SimConfig::builder(2).build().unwrap(), &w);
    assert_eq!(stats.cores[0].hits, 1, "load after downgrade hits");
    assert_eq!(stats.cores[0].misses, 2);
    assert_eq!(stats.cores[0].upgrades, 1);
    assert_eq!(stats.cores[1].misses, 1);
}

#[test]
fn execution_time_equals_slowest_core() {
    let w = micro::random_shared(3, 8, 100, 0.5, 2);
    let stats = run(SimConfig::builder(3).build().unwrap(), &w);
    let max_finish = stats.cores.iter().map(|c| c.finish).max().unwrap();
    assert_eq!(stats.execution_time(), max_finish);
    assert!(stats.cycles >= max_finish);
}

#[test]
fn runs_are_deterministic() {
    let w = micro::random_shared(4, 64, 500, 0.3, 42);
    let config = SimConfig::builder(4)
        .timers(vec![timed(30), timed(10), TimerValue::MSI, timed(75)])
        .build()
        .unwrap();
    let a = run(config.clone(), &w);
    let b = run(config, &w);
    assert_eq!(a, b);
}

#[test]
fn every_access_is_accounted() {
    let w = micro::random_shared(4, 32, 400, 0.5, 9);
    let stats = run(SimConfig::builder(4).timers(vec![timed(25); 4]).build().unwrap(), &w);
    for (core, trace) in stats.cores.iter().zip(w.traces()) {
        assert_eq!(core.accesses(), trace.len() as u64);
    }
}

#[test]
fn fcfs_serves_oldest_requests_first() {
    let w = micro::streaming(3, 30);
    let stats = run(SimConfig::builder(3).arbiter(ArbiterKind::Fcfs).build().unwrap(), &w);
    for core in &stats.cores {
        assert_eq!(core.misses, 30);
    }
}

#[test]
fn workload_core_count_must_match() {
    let w = micro::ping_pong(2, 1);
    assert!(Simulator::new(SimConfig::builder(3).build().unwrap(), &w).is_err());
}

#[test]
fn run_until_stops_at_the_deadline_and_resumes() {
    // Partial execution: stop mid-run, inspect, resume to completion —
    // the state machine must be pause-safe (used by mode-switch drivers).
    let w = micro::random_shared(2, 16, 200, 0.5, 7);
    let config = SimConfig::builder(2).timers(vec![timed(30); 2]).build().unwrap();
    let mut paused = Simulator::new(config.clone(), &w).unwrap();
    paused.run_until(Cycles::new(500)).unwrap();
    assert!(paused.now() <= Cycles::new(500));
    assert!(!paused.is_finished());
    paused.run_until(Cycles::new(u64::MAX)).unwrap();
    assert!(paused.is_finished());

    let stats_once = run(config, &w);
    assert_eq!(paused.stats(), &stats_once, "pausing must not change the outcome");
}

#[test]
fn deeper_mshrs_never_slow_a_core_down() {
    let w = micro::random_shared(2, 32, 300, 0.4, 13);
    let exec = |mshr: usize| {
        let config = SimConfig::builder(2).mshr_per_core(mshr).build().unwrap();
        run(config, &w).execution_time()
    };
    assert!(exec(4) <= exec(1), "extra MSHRs add overlap, not stalls");
}

#[test]
fn raising_theta_mid_countdown_cannot_reprotect_the_line() {
    // c0's counter loads θ = 500 at fill (cycle 54); c1's request is
    // snooped at 58, so the hand-over is due at 554. A mode switch at
    // cycle 300 raises the θ register to 60 000 — but the Figure-3 counter
    // already loaded 500 and keeps counting it down: c1 must be served
    // around 604, not 60 054.
    let c0 = Trace::from_ops(vec![TraceOp::store(0)]);
    let c1 = Trace::from_ops(vec![TraceOp::store(0).after(40)]);
    let w = Workload::new("reload", vec![c0, c1]).unwrap();
    let config = SimConfig::builder(2).timer(0, timed(500)).build().unwrap();
    let mut sim = Simulator::new(config, &w).unwrap();
    sim.schedule_timer_switch(Cycles::new(300), vec![timed(60_000), TimerValue::MSI]).unwrap();
    let stats = sim.run().unwrap();
    assert!(
        stats.cores[1].worst_request.get() < 1_000,
        "a running countdown is not re-loaded by a register write: {}",
        stats.cores[1].worst_request
    );
    // And the converse: switching the register to −1 releases immediately.
    let config = SimConfig::builder(2).timer(0, timed(60_000)).build().unwrap();
    let mut sim = Simulator::new(config, &w).unwrap();
    sim.schedule_timer_switch(Cycles::new(200), vec![TimerValue::MSI; 2]).unwrap();
    let stats = sim.run().unwrap();
    assert!(
        stats.cores[1].worst_request.get() < 500,
        "Enable low (θ = −1) releases a held line at once: {}",
        stats.cores[1].worst_request
    );
}
