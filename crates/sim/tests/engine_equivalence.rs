//! Cross-engine equivalence: the event-driven scheduler must be
//! bit-identical to the legacy cycle-round engine — same event log, same
//! final stats, same injected-fault records — on every protocol preset.
//!
//! These are written as plain `#[test]` loops over seeded workloads (not
//! `proptest!`) so they execute under the offline stub harness too; the
//! seeds make every run reproducible.

use cohort_sim::{
    compare_engines, ArbiterKind, CacheGeometry, DataPath, FaultPlan, LlcModel, ProtocolFlavor,
    SimConfig,
};
use cohort_trace::{micro, Kernel, KernelSpec, Workload};
use cohort_types::{Cycles, TimerValue};

/// Asserts both engines agree, with a hint naming the failing case.
fn assert_identical(
    config: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    switches: &[(Cycles, Vec<TimerValue>)],
    label: &str,
) {
    let cmp = compare_engines(config, workload, plan, switches)
        .unwrap_or_else(|e| panic!("{label}: comparison run failed: {e}"));
    assert!(cmp.is_identical(), "{label}: {}", cmp.describe());
}

/// The paper's protocol presets, exercised on every workload below.
fn preset_configs(cores: usize) -> Vec<(String, SimConfig)> {
    let timed = vec![TimerValue::timed(30).unwrap(); cores];
    let slow = vec![TimerValue::timed(300).unwrap(); cores];
    vec![
        ("msi_rrof".into(), SimConfig::builder(cores).build().unwrap()),
        ("cohort_timed".into(), SimConfig::builder(cores).timers(timed.clone()).build().unwrap()),
        (
            "pcc_staged".into(),
            SimConfig::builder(cores).data_path(DataPath::ViaSharedMemory).build().unwrap(),
        ),
        (
            "pendulum_tdm".into(),
            SimConfig::builder(cores)
                .timers(slow)
                .arbiter(ArbiterKind::Tdm { critical: vec![true; cores] })
                .waiter_priority(vec![true; cores])
                .build()
                .unwrap(),
        ),
        ("msi_fcfs".into(), SimConfig::builder(cores).arbiter(ArbiterKind::Fcfs).build().unwrap()),
        (
            "msi_round_robin".into(),
            SimConfig::builder(cores).arbiter(ArbiterKind::RoundRobin).build().unwrap(),
        ),
        (
            "mesi_rrof".into(),
            SimConfig::builder(cores).flavor(ProtocolFlavor::Mesi).build().unwrap(),
        ),
        (
            "mixed_timers_finite_llc".into(),
            SimConfig::builder(cores)
                .timers(
                    (0..cores)
                        .map(|i| {
                            if i % 2 == 0 {
                                TimerValue::timed(40 + 10 * i as u64).unwrap()
                            } else {
                                TimerValue::Msi
                            }
                        })
                        .collect(),
                )
                .llc(LlcModel::Finite(CacheGeometry::new(4096, 64, 4).unwrap()))
                .build()
                .unwrap(),
        ),
    ]
}

#[test]
fn engines_agree_on_seeded_random_workloads() {
    let empty = FaultPlan::empty();
    for seed in 0..6u64 {
        let w = micro::random_shared(4, 32, 160, 0.5, seed);
        for (name, config) in preset_configs(4) {
            assert_identical(&config, &w, &empty, &[], &format!("random seed {seed} / {name}"));
        }
    }
}

#[test]
fn engines_agree_on_micro_patterns() {
    let empty = FaultPlan::empty();
    let patterns: Vec<(&str, Workload)> = vec![
        ("ping_pong", micro::ping_pong(4, 12)),
        ("streaming", micro::streaming(4, 64)),
        ("line_bursts", micro::line_bursts(4, 4, 6)),
        ("private_reuse", micro::private_reuse(4, 8, 64)),
        ("figure1", micro::figure1(100)),
        ("figure4", micro::figure4()),
    ];
    for (wname, w) in &patterns {
        let cores = w.cores();
        for (cname, config) in preset_configs(cores) {
            assert_identical(&config, w, &empty, &[], &format!("{wname} / {cname}"));
        }
    }
}

#[test]
fn engines_agree_on_kernel_workloads() {
    let empty = FaultPlan::empty();
    for kernel in [Kernel::Fft, Kernel::Ocean] {
        let w = KernelSpec::new(kernel, 4).with_total_requests(1_500).generate();
        for (name, config) in preset_configs(4) {
            assert_identical(&config, &w, &empty, &[], &format!("{kernel:?} / {name}"));
        }
    }
}

#[test]
fn engines_agree_under_scheduled_mode_switches() {
    let empty = FaultPlan::empty();
    let w = micro::random_shared(4, 24, 200, 0.6, 11);
    let tight = vec![TimerValue::timed(20).unwrap(); 4];
    let loose = vec![TimerValue::timed(400).unwrap(); 4];
    let msi = vec![TimerValue::Msi; 4];
    for (name, config) in preset_configs(4) {
        let switches = vec![
            (Cycles::new(500), tight.clone()),
            (Cycles::new(2_000), msi.clone()),
            (Cycles::new(5_000), loose.clone()),
        ];
        assert_identical(&config, &w, &empty, &switches, &format!("switches / {name}"));
    }
}

#[test]
fn engines_agree_under_fault_injection() {
    for seed in [3u64, 17, 42] {
        let w = micro::random_shared(4, 24, 200, 0.5, seed);
        let plan = FaultPlan::seeded(seed, 4, 20_000, 12);
        assert!(!plan.is_empty(), "seeded fault plan must be non-empty");
        for (name, config) in preset_configs(4) {
            assert_identical(&config, &w, &plan, &[], &format!("faults seed {seed} / {name}"));
        }
    }
}

#[test]
fn engines_agree_with_faults_and_switches_together() {
    let w = micro::random_shared(4, 16, 240, 0.7, 23);
    let plan = FaultPlan::seeded(23, 4, 30_000, 8);
    let switches = vec![
        (Cycles::new(1_000), vec![TimerValue::timed(25).unwrap(); 4]),
        (Cycles::new(4_000), vec![TimerValue::Msi; 4]),
    ];
    for (name, config) in preset_configs(4) {
        assert_identical(&config, &w, &plan, &switches, &format!("faults+switches / {name}"));
    }
}

#[test]
fn engines_agree_on_single_core_and_wide_configs() {
    let empty = FaultPlan::empty();
    let single = micro::streaming(1, 40);
    assert_identical(&SimConfig::builder(1).build().unwrap(), &single, &empty, &[], "single core");
    let wide = micro::random_shared(8, 64, 400, 0.4, 31);
    for (name, config) in preset_configs(8) {
        assert_identical(&config, &wide, &empty, &[], &format!("8-core / {name}"));
    }
}
