//! Targeted edge cases of the coherence engine: upgrade races, eviction of
//! contested lines, GetS chains, and priority-queue displacement.

use cohort_sim::{EventKind, EventLogProbe, InvalidateCause, SimConfig, Simulator};
use cohort_trace::{Trace, TraceOp, Workload};
use cohort_types::{Cycles, TimerValue};

fn timed(theta: u64) -> TimerValue {
    TimerValue::timed(theta).unwrap()
}

fn run_logged(config: SimConfig, w: &Workload) -> Simulator<EventLogProbe> {
    let mut sim = Simulator::with_probe(config, w, EventLogProbe::new()).unwrap();
    sim.run().unwrap();
    sim.validate_coherence().unwrap();
    sim
}

#[test]
fn upgrade_queued_behind_foreign_getm_loses_then_refetches() {
    // c0 loads A (S), c1 stores A (GetM queued), c0 stores A (upgrade
    // queued behind c1). c1's GetM invalidates c0's S copy; c0's upgrade
    // must then be served as a full fill — and still complete.
    let c0 = Trace::from_ops(vec![TraceOp::load(0), TraceOp::store(0).after(60)]);
    let c1 = Trace::from_ops(vec![TraceOp::store(0).after(30)]);
    let w = Workload::new("upgrade-race", vec![c0, c1]).unwrap();
    let sim = run_logged(SimConfig::builder(2).build().unwrap(), &w);
    let stats = sim.stats();
    assert_eq!(stats.cores[0].accesses(), 2);
    assert_eq!(stats.cores[1].accesses(), 1);
    // c0 was dispossessed between its load and its store.
    assert!(sim.probe().iter().any(|e| matches!(
        e.kind,
        EventKind::Invalidate { core: 0, cause: InvalidateCause::Stolen, .. }
    )));
}

#[test]
fn contested_line_evicted_by_owner_is_served_from_memory() {
    // c0 owns A with a long timer; c1 waits for it; c0's own conflicting
    // miss (A + 256 sets) evicts A early — c1 must then be served from the
    // shared memory without waiting out the timer.
    let c0 = Trace::from_ops(vec![TraceOp::store(0), TraceOp::load(256).after(10)]);
    let c1 = Trace::from_ops(vec![TraceOp::store(0).after(20)]);
    let w = Workload::new("evict-contested", vec![c0, c1]).unwrap();
    let config = SimConfig::builder(2).timer(0, timed(50_000)).build().unwrap();
    let sim = run_logged(config, &w);
    assert!(
        sim.stats().cores[1].worst_request.get() < 1_000,
        "the eviction released the line early: {}",
        sim.stats().cores[1].worst_request
    );
    assert!(sim.probe().iter().any(|e| matches!(
        e.kind,
        EventKind::Invalidate { core: 0, cause: InvalidateCause::Replacement, .. }
    )));
}

#[test]
fn gets_chain_shares_without_serial_steals() {
    // One producer stores, three consumers load: after the chain, all four
    // caches hold the line and subsequent loads hit everywhere.
    let producer = Trace::from_ops(vec![TraceOp::store(0), TraceOp::load(0).after(2_000)]);
    let consumer =
        |d: u64| Trace::from_ops(vec![TraceOp::load(0).after(d), TraceOp::load(0).after(2_000)]);
    let w = Workload::new("gets-chain", vec![producer, consumer(10), consumer(20), consumer(30)])
        .unwrap();
    let sim = run_logged(SimConfig::builder(4).build().unwrap(), &w);
    let stats = sim.stats();
    assert_eq!(stats.cores[0].hits, 1, "producer's late load hits its downgraded copy");
    for c in 1..4 {
        assert_eq!(stats.cores[c].misses, 1, "consumer {c} misses once");
        assert_eq!(stats.cores[c].hits, 1, "consumer {c}'s revisit hits its S copy");
    }
}

#[test]
fn producer_downgraded_by_gets_upgrades_on_next_store() {
    let producer = Trace::from_ops(vec![
        TraceOp::store(0),
        TraceOp::store(0).after(300), // after the consumer's GetS: upgrade
    ]);
    let consumer = Trace::from_ops(vec![TraceOp::load(0).after(10)]);
    let w = Workload::new("re-upgrade", vec![producer, consumer]).unwrap();
    let sim = run_logged(SimConfig::builder(2).build().unwrap(), &w);
    assert_eq!(sim.stats().cores[0].upgrades, 1);
    assert!(sim.probe().iter().any(|e| matches!(e.kind, EventKind::Downgrade { core: 0, .. })));
    // The consumer's S copy is invalidated by the upgrade.
    assert!(sim.probe().iter().any(|e| matches!(
        e.kind,
        EventKind::Invalidate { core: 1, cause: InvalidateCause::Stolen, .. }
    )));
}

#[test]
fn priority_queue_lets_critical_jump_queued_noncritical_waiters() {
    // c0 (nCr) and c2 (Cr) both want A, held by c1 with a timer. c0
    // broadcasts first, but with priority queues c2 is served first.
    let c1_owner = Trace::from_ops(vec![TraceOp::store(0)]);
    let c0_ncr = Trace::from_ops(vec![TraceOp::store(0).after(60)]);
    let c2_cr = Trace::from_ops(vec![TraceOp::store(0).after(90)]);
    let w = Workload::new("priority", vec![c0_ncr, c1_owner, c2_cr]).unwrap();
    let config = SimConfig::builder(3)
        .timers(vec![timed(200); 3])
        .waiter_priority(vec![false, false, true])
        .build()
        .unwrap();
    let sim = run_logged(config, &w);
    let fills: Vec<usize> = sim
        .probe()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Fill { core, line, .. } if line.raw() == 0 => Some(*core),
            _ => None,
        })
        .collect();
    assert_eq!(fills, vec![1, 2, 0], "critical c2 overtakes the earlier nCr waiter");
}

#[test]
fn zero_theta_serves_and_invalidates_immediately() {
    // θ = 0: "serve the pending request(s) and invalidate immediately" —
    // behaves like MSI for interferers but never yields guaranteed hits.
    let w = Workload::new(
        "theta0",
        vec![
            Trace::from_ops(vec![TraceOp::store(0), TraceOp::store(0).after(200)]),
            Trace::from_ops(vec![TraceOp::store(0).after(20)]),
        ],
    )
    .unwrap();
    let zero = run_logged(SimConfig::builder(2).timer(0, timed(0)).build().unwrap(), &w);
    let msi = run_logged(SimConfig::builder(2).build().unwrap(), &w);
    assert_eq!(
        zero.stats().cores[1].worst_request,
        msi.stats().cores[1].worst_request,
        "θ = 0 releases like MSI"
    );
}

#[test]
fn same_core_repeated_line_touches_use_one_mshr() {
    // Burst of accesses to one missing line: one bus transaction total.
    let ops = vec![TraceOp::load(0), TraceOp::load(0), TraceOp::load(0), TraceOp::load(0)];
    let w = Workload::new("coalesce", vec![Trace::from_ops(ops)]).unwrap();
    let sim = run_logged(SimConfig::builder(1).build().unwrap(), &w);
    assert_eq!(sim.stats().broadcasts, 1, "followers wait on the in-flight miss");
    assert_eq!(sim.stats().cores[0].misses, 1);
    assert_eq!(sim.stats().cores[0].hits, 3);
}

#[test]
fn event_log_cycles_are_monotone() {
    let w = cohort_trace::micro::random_shared(3, 12, 150, 0.5, 21);
    let config =
        SimConfig::builder(3).timers(vec![timed(40), TimerValue::MSI, timed(9)]).build().unwrap();
    let sim = run_logged(config, &w);
    let mut last = Cycles::ZERO;
    for event in sim.probe() {
        assert!(event.cycle >= last, "event log must be chronological");
        last = event.cycle;
    }
    assert!(!sim.probe().is_empty());
}
