//! Contract tests of the [`SimProbe`] streaming instrumentation API: the
//! no-op probe changes nothing, the built-in probes agree with the
//! engine's own statistics, and the Chrome-trace export is well-formed.

use cohort_sim::{ChromeTraceProbe, EventKind, EventLogProbe, MetricsProbe, SimConfig, Simulator};
use cohort_trace::{micro, Workload};
use cohort_types::TimerValue;

fn timed(theta: u64) -> TimerValue {
    TimerValue::timed(theta).unwrap()
}

/// A mixed CoHoRT quad-core on a contended workload: two timed, two MSI.
fn cohort_config() -> SimConfig {
    SimConfig::builder(4)
        .timer(0, timed(40))
        .timer(1, timed(90))
        .timer(2, TimerValue::MSI)
        .timer(3, TimerValue::MSI)
        .build()
        .unwrap()
}

fn contended_workload() -> Workload {
    micro::random_shared(4, 12, 300, 0.5, 11)
}

#[test]
fn noop_probe_run_is_identical_to_default_run() {
    // `Simulator::new` (NoProbe) and a probe-instrumented run must produce
    // bit-identical statistics: probes observe, they never perturb.
    let w = contended_workload();
    let mut plain = Simulator::new(cohort_config(), &w).unwrap();
    let plain_stats = plain.run().unwrap();

    let probe = (MetricsProbe::new(), EventLogProbe::new());
    let mut observed = Simulator::with_probe(cohort_config(), &w, probe).unwrap();
    let observed_stats = observed.run().unwrap();

    assert_eq!(plain_stats, observed_stats, "probes must not perturb the simulation");
}

#[test]
fn event_stream_matches_between_probe_instances() {
    // Two separately-probed runs of the same config see the same stream.
    let w = contended_workload();
    let run = || {
        let mut sim = Simulator::with_probe(cohort_config(), &w, EventLogProbe::new()).unwrap();
        sim.run().unwrap();
        sim.into_probe().into_events()
    };
    assert_eq!(run(), run(), "event streams are deterministic");
}

#[test]
fn event_log_ring_buffer_keeps_the_most_recent_events() {
    let w = contended_workload();
    let mut full_sim = Simulator::with_probe(cohort_config(), &w, EventLogProbe::new()).unwrap();
    full_sim.run().unwrap();
    let full = full_sim.into_probe();

    let cap = 64;
    let ring_probe = EventLogProbe::with_capacity(cap);
    let mut ring_sim = Simulator::with_probe(cohort_config(), &w, ring_probe).unwrap();
    ring_sim.run().unwrap();
    let ring = ring_sim.into_probe();

    assert_eq!(ring.len(), cap);
    assert_eq!(ring.dropped(), full.len() as u64 - cap as u64);
    let tail = &full.to_vec()[full.len() - cap..];
    assert_eq!(ring.to_vec(), tail, "the ring keeps the most recent events");
}

#[test]
fn histogram_counts_sum_to_core_accesses() {
    let w = contended_workload();
    let mut sim = Simulator::with_probe(cohort_config(), &w, MetricsProbe::new()).unwrap();
    let stats = sim.run().unwrap();
    let report = sim.into_probe().into_report();

    assert_eq!(report.cores.len(), 4);
    for (core, metrics) in report.cores.iter().enumerate() {
        assert_eq!(
            metrics.latency.count(),
            stats.cores[core].accesses(),
            "core {core}: every access lands in exactly one bucket"
        );
        let bucket_sum: u64 = metrics.latency.nonzero_buckets().map(|(_, _, n)| n).sum();
        assert_eq!(bucket_sum, metrics.latency.count());
        assert_eq!(metrics.latency.max(), stats.cores[core].worst_request);
    }
    assert_eq!(report.cycles, stats.cycles.get());
}

#[test]
fn metrics_quantiles_are_ordered_and_bounded_by_max() {
    let w = contended_workload();
    let mut sim = Simulator::with_probe(cohort_config(), &w, MetricsProbe::new()).unwrap();
    sim.run().unwrap();
    let report = sim.into_probe().into_report();
    for metrics in &report.cores {
        let h = &metrics.latency;
        assert!(h.p50() <= h.p99());
        assert!(h.p99() <= h.max());
    }
}

#[test]
fn eq1_bound_is_attached_and_respected_on_analysable_configs() {
    // The default CoHoRT setup (RROF + cache-to-cache + 1 MSHR) is the
    // analysable operating point, so the probe computes Eq. 1 bounds and
    // no observed latency may exceed them.
    let w = contended_workload();
    let mut sim = Simulator::with_probe(cohort_config(), &w, MetricsProbe::new()).unwrap();
    sim.run().unwrap();
    let report = sim.into_probe().into_report();
    for (core, metrics) in report.cores.iter().enumerate() {
        let bound = metrics.wcl_bound.expect("analysable config carries a bound");
        assert!(
            metrics.latency.max().get() <= bound,
            "core {core}: observed {} > Eq. 1 bound {bound}",
            metrics.latency.max()
        );
    }
    assert!(report.bound_ok());
}

#[test]
fn bus_utilisation_is_a_fraction_and_busy_splits_per_core() {
    let w = contended_workload();
    let mut sim = Simulator::with_probe(cohort_config(), &w, MetricsProbe::new()).unwrap();
    sim.run().unwrap();
    let report = sim.into_probe().into_report();
    let util = report.bus_utilisation();
    assert!((0.0..=1.0).contains(&util), "utilisation {util} out of range");
    assert!(util > 0.0, "a contended run keeps the bus busy");
    let per_core: u64 = report.cores.iter().map(|c| c.bus_busy).sum();
    assert_eq!(per_core, report.bus_busy, "global busy is the per-core sum");
}

#[test]
fn metrics_report_json_is_schema_shaped() {
    let w = contended_workload();
    let mut sim = Simulator::with_probe(cohort_config(), &w, MetricsProbe::new()).unwrap();
    sim.run().unwrap();
    let json = sim.into_probe().into_report().to_json();
    assert!(json.get("cycles").and_then(serde_json::Value::as_u64).is_some());
    assert!(json.get("bus_utilisation").and_then(serde_json::Value::as_f64).is_some());
    let cores = json.get("cores").and_then(|v| v.as_array()).expect("cores array");
    assert_eq!(cores.len(), 4);
    for core in cores {
        for key in ["accesses", "latency_p50", "latency_p99", "latency_max", "bus_busy"] {
            assert!(core.get(key).and_then(serde_json::Value::as_u64).is_some(), "missing {key}");
        }
        assert!(core.get("histogram").and_then(|v| v.as_array()).is_some());
    }
}

#[test]
fn chrome_trace_is_valid_json_with_balanced_pairs() {
    // Every bus transaction appears as one complete B/E pair on the bus
    // track, and the whole artifact parses back from its serialized form.
    let w = contended_workload();
    let probe = (ChromeTraceProbe::new(), EventLogProbe::new());
    let mut sim = Simulator::with_probe(cohort_config(), &w, probe).unwrap();
    let stats = sim.run().unwrap();
    let (chrome, log) = sim.into_probe();

    let parsed: serde_json::Value = serde_json::from_str(&chrome.to_json_string()).unwrap();
    let events = parsed.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents");

    let phase = |e: &serde_json::Value| e.get("ph").and_then(|p| p.as_str()).unwrap().to_owned();
    let begins = events.iter().filter(|e| phase(e) == "B").count();
    let ends = events.iter().filter(|e| phase(e) == "E").count();
    assert_eq!(begins, ends, "every B has a matching E");
    assert!(begins as u64 >= stats.broadcasts, "at least one tenure per broadcast");

    // B/E events all live on the bus track and alternate in time order
    // (bus tenures never overlap).
    let bus_tid = 4u64; // cores 0..=3, bus = n
    let mut depth = 0i64;
    let mut last_ts = 0u64;
    for e in events.iter().filter(|e| phase(e) == "B" || phase(e) == "E") {
        assert_eq!(e.get("tid").and_then(serde_json::Value::as_u64), Some(bus_tid));
        let ts = e.get("ts").and_then(serde_json::Value::as_u64).unwrap();
        assert!(ts >= last_ts, "bus pairs are emitted in order");
        last_ts = ts;
        depth += if phase(e) == "B" { 1 } else { -1 };
        assert!((0..=1).contains(&depth), "tenures never nest");
    }
    assert_eq!(depth, 0);

    // One X span per fill observed by the event log.
    let fills = log.iter().filter(|e| matches!(e.kind, EventKind::Fill { .. })).count();
    let spans = events.iter().filter(|e| phase(e) == "X").count();
    assert_eq!(spans, fills, "one complete span per miss");
}

#[test]
fn chrome_trace_has_one_track_per_core_plus_bus_and_llc() {
    let w = contended_workload();
    let mut sim = Simulator::with_probe(cohort_config(), &w, ChromeTraceProbe::new()).unwrap();
    sim.run().unwrap();
    let json = sim.into_probe().to_json();
    let events = json.get("traceEvents").and_then(|v| v.as_array()).unwrap();
    let names: Vec<String> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_owned))
        .collect();
    for expect in ["core 0", "core 1", "core 2", "core 3", "bus", "llc"] {
        assert!(names.iter().any(|n| n == expect), "missing track {expect}");
    }
}

#[test]
fn mode_switch_lands_in_metrics_and_trace() {
    let w = micro::ping_pong(2, 30);
    let config = SimConfig::builder(2).timer(0, timed(40)).timer(1, timed(40)).build().unwrap();
    let probe = (MetricsProbe::new(), ChromeTraceProbe::new());
    let mut sim = Simulator::with_probe(config, &w, probe).unwrap();
    sim.schedule_timer_switch(cohort_types::Cycles::new(100), vec![TimerValue::MSI; 2]).unwrap();
    sim.run().unwrap();
    let (metrics, chrome) = sim.into_probe();
    assert_eq!(metrics.report().mode_switches, 1);
    let json = chrome.to_json();
    let events = json.get("traceEvents").and_then(|v| v.as_array()).unwrap();
    assert!(
        events.iter().any(|e| e.get("name").and_then(|n| n.as_str()) == Some("mode-switch")),
        "the switch shows on the bus track"
    );
}
