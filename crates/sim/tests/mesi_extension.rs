//! The MESI extension: Exclusive fills and silent upgrades, with the MSI
//! configuration (the paper's baseline) byte-for-byte unaffected.

use cohort_sim::{EventKind, EventLogProbe, ProtocolFlavor, SimConfig, SimStats, Simulator};
use cohort_trace::{micro, Trace, TraceOp, Workload};
use cohort_types::TimerValue;

fn run(config: SimConfig, w: &Workload) -> SimStats {
    let mut sim = Simulator::new(config, w).expect("sim");
    let stats = sim.run().expect("runs");
    sim.validate_coherence().expect("invariants");
    stats
}

fn mesi(cores: usize) -> SimConfig {
    SimConfig::builder(cores).flavor(ProtocolFlavor::Mesi).build().unwrap()
}

#[test]
fn load_then_store_is_silent_under_mesi() {
    // The canonical E-state win: an unshared read fill grants Exclusive,
    // so the following store hits without an upgrade transaction.
    let w = Workload::new(
        "silent-upgrade",
        vec![Trace::from_ops(vec![TraceOp::load(0), TraceOp::store(0)])],
    )
    .unwrap();
    let mesi_stats = run(mesi(1), &w);
    assert_eq!(mesi_stats.cores[0].misses, 1, "only the cold fill");
    assert_eq!(mesi_stats.cores[0].hits, 1, "the store hits silently");
    assert_eq!(mesi_stats.broadcasts, 1);

    let msi_stats = run(SimConfig::builder(1).build().unwrap(), &w);
    assert_eq!(msi_stats.cores[0].misses, 2, "MSI pays the upgrade");
    assert_eq!(msi_stats.broadcasts, 2);
}

#[test]
fn shared_read_fills_are_not_exclusive() {
    // Two cores read the same line; the second fill must be Shared, so a
    // later store by either still upgrades via the bus.
    let c0 = Trace::from_ops(vec![TraceOp::load(0), TraceOp::store(0).after(400)]);
    let c1 = Trace::from_ops(vec![TraceOp::load(0).after(10)]);
    let w = Workload::new("shared-read", vec![c0, c1]).unwrap();
    let stats = run(mesi(2), &w);
    // c0's store happens after c1's GetS downgraded... c0 was Exclusive
    // owner; c1's GetS downgrades it to Shared → the store upgrades.
    assert_eq!(stats.cores[0].upgrades, 1, "shared line still needs GetM");
}

#[test]
fn exclusive_owner_is_snooped_like_modified() {
    // c0 holds E with a timer; c1's GetM must wait for the timer just as it
    // would for an M owner.
    let c0 = Trace::from_ops(vec![TraceOp::load(0)]);
    let c1 = Trace::from_ops(vec![TraceOp::store(0).after(60)]);
    let w = Workload::new("snoop-e", vec![c0, c1]).unwrap();
    let config = SimConfig::builder(2)
        .flavor(ProtocolFlavor::Mesi)
        .timer(0, TimerValue::timed(500).unwrap())
        .build()
        .unwrap();
    let stats = run(config, &w);
    assert!(
        stats.cores[1].worst_request.get() > 400,
        "the Exclusive holder's timer gates the hand-over: {}",
        stats.cores[1].worst_request
    );
}

#[test]
fn mesi_never_reduces_hits_on_kernels() {
    // The whole-system hit total is NOT monotone under MESI: the Exclusive
    // state shifts bus timing, and the changed interleaving of *shared*
    // lines can cost a hit elsewhere (barnes: 1179 vs 1180 in the seed).
    // The sound statement of the invariant is per-core and per-line, over
    // lines only one core ever touches: a private line's hit count depends
    // only on that core's own access order (no snoops, no steals — the
    // perfect LLC never back-invalidates), so MESI's silent upgrades can
    // only add hits there, never remove them.
    use std::collections::{HashMap, HashSet};

    let hits_per_line = |config: SimConfig, w: &Workload| -> HashMap<(usize, u64), u64> {
        let mut sim = Simulator::with_probe(config, w, EventLogProbe::new()).expect("sim");
        sim.run().expect("runs");
        sim.validate_coherence().expect("invariants");
        let mut hits = HashMap::new();
        for event in sim.probe() {
            if let EventKind::Hit { core, line } = event.kind {
                *hits.entry((core, line.raw())).or_insert(0) += 1;
            }
        }
        hits
    };

    for kernel in cohort_trace::Kernel::ALL {
        let w = cohort_trace::KernelSpec::new(kernel, 4).with_total_requests(2_000).generate();

        // Lines touched by exactly one core in the whole workload.
        let mut touched_by: HashMap<u64, HashSet<usize>> = HashMap::new();
        for (core, trace) in w.traces().iter().enumerate() {
            for op in trace {
                touched_by.entry(op.line.raw()).or_default().insert(core);
            }
        }
        let private: Vec<(usize, u64)> = touched_by
            .iter()
            .filter(|(_, cores)| cores.len() == 1)
            .map(|(&line, cores)| (*cores.iter().next().unwrap(), line))
            .collect();
        assert!(!private.is_empty(), "{kernel}: needs private lines to be meaningful");

        let timers = vec![TimerValue::timed(24).unwrap(); 4];
        let msi = hits_per_line(SimConfig::builder(4).timers(timers.clone()).build().unwrap(), &w);
        let mesi_hits = hits_per_line(
            SimConfig::builder(4).timers(timers).flavor(ProtocolFlavor::Mesi).build().unwrap(),
            &w,
        );

        for &(core, line) in &private {
            let before = msi.get(&(core, line)).copied().unwrap_or(0);
            let after = mesi_hits.get(&(core, line)).copied().unwrap_or(0);
            assert!(
                after >= before,
                "{kernel}: core {core} line {line:#x}: MESI {after} < MSI {before}"
            );
        }
    }
}

#[test]
fn eq1_bound_still_holds_under_mesi() {
    // The analysis is flavor-agnostic (E releases exactly like M), so the
    // Eq. 1 bound must dominate MESI runs too.
    let w = micro::random_shared(4, 12, 400, 0.5, 31);
    let timers = [
        TimerValue::timed(40).unwrap(),
        TimerValue::MSI,
        TimerValue::timed(90).unwrap(),
        TimerValue::MSI,
    ];
    let config =
        SimConfig::builder(4).timers(timers.to_vec()).flavor(ProtocolFlavor::Mesi).build().unwrap();
    let stats = run(config, &w);
    // Eq. 1 inlined (cohort-analysis sits above cohort-sim in the DAG).
    let sw = cohort_types::LatencyConfig::paper().slot_width().get();
    for i in 0..4 {
        let theta_terms: u64 =
            (0..4).filter(|&j| j != i).filter_map(|j| timers[j].theta().map(|t| t + sw)).sum();
        let bound = 4 * sw + theta_terms;
        assert!(
            stats.cores[i].worst_request.get() <= bound,
            "core {i}: {} > {bound}",
            stats.cores[i].worst_request
        );
    }
}

#[test]
fn msi_default_is_unchanged_by_the_extension() {
    let w = micro::random_shared(3, 16, 300, 0.4, 17);
    let explicit = run(SimConfig::builder(3).flavor(ProtocolFlavor::Msi).build().unwrap(), &w);
    let default = run(SimConfig::builder(3).build().unwrap(), &w);
    assert_eq!(explicit, default);
}
