//! Property-based tests: the simulator must terminate, preserve coherence
//! invariants, account every access and bound every request latency on
//! arbitrary workloads and timer assignments.

use proptest::prelude::*;

use cohort_sim::ArbiterKind;
use cohort_trace::{AccessKind, Trace, TraceOp, Workload};
use cohort_types::{Cycles, LineAddr, TimerValue};

/// An arbitrary timer value: MSI or a small θ.
#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn timer_strategy() -> impl Strategy<Value = TimerValue> {
    prop_oneof![
        Just(TimerValue::MSI),
        (1u64..=120).prop_map(|t| TimerValue::timed(t).expect("≤ 16 bits")),
    ]
}

/// An arbitrary small workload over a handful of lines (dense sharing).
#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn workload_strategy(cores: usize) -> impl Strategy<Value = Workload> {
    let op = (0u64..12, any::<bool>(), 0u64..8).prop_map(|(line, store, gap)| {
        TraceOp::new(
            LineAddr::new(line),
            if store { AccessKind::Store } else { AccessKind::Load },
            Cycles::new(gap),
        )
    });
    proptest::collection::vec(proptest::collection::vec(op, 1..60), cores..=cores).prop_map(
        |traces| {
            Workload::new("prop", traces.into_iter().map(Trace::from_ops).collect())
                .expect("non-empty")
        },
    )
}

#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn arbiter_strategy(cores: usize) -> impl Strategy<Value = ArbiterKind> {
    prop_oneof![
        Just(ArbiterKind::Rrof),
        Just(ArbiterKind::RoundRobin),
        Just(ArbiterKind::Fcfs),
        proptest::collection::vec(any::<bool>(), cores..=cores).prop_map(|mut mask| {
            if !mask.iter().any(|&b| b) {
                mask[0] = true;
            }
            ArbiterKind::Tdm { critical: mask }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every run terminates, accounts every access, and ends in a state
    /// satisfying the coherence invariants (SWMR, bookkeeping agreement).
    #[test]
    fn runs_terminate_and_account_everything(
        workload in workload_strategy(3),
        timers in proptest::collection::vec(timer_strategy(), 3),
        arbiter in arbiter_strategy(3),
        via_llc in any::<bool>(),
    ) {
        let config = SimConfig::builder(3)
            .timers(timers)
            .arbiter(arbiter)
            .data_path(if via_llc { DataPath::ViaSharedMemory } else { DataPath::CacheToCache })
            .build()
            .expect("valid config");
        let mut sim = Simulator::new(config, &workload).expect("valid sim");
        let stats = sim.run().expect("no deadlock");
        sim.validate_coherence().expect("invariants hold");
        for (core, trace) in stats.cores.iter().zip(workload.traces()) {
            prop_assert_eq!(core.accesses(), trace.len() as u64);
            prop_assert!(core.finish <= stats.cycles);
        }
    }

    /// Per-request latency is bounded by the Eq. 1 worst case under RROF
    /// (the key predictability claim the analysis crate formalises).
    #[test]
    fn request_latency_bounded_by_eq1(
        workload in workload_strategy(4),
        timers in proptest::collection::vec(timer_strategy(), 4),
    ) {
        let config = SimConfig::builder(4).timers(timers.clone()).build().expect("valid");
        let sw = config.latency().slot_width().get();
        let n = 4u64;
        let mut sim = Simulator::new(config, &workload).expect("valid sim");
        let stats = sim.run().expect("no deadlock");
        for i in 0..4 {
            // Eq. 1: SW + (N−1)·SW + Σ_{j≠i, θ_j ≥ 0} (θ_j + SW).
            let timer_terms: u64 = (0..4)
                .filter(|&j| j != i)
                .filter_map(|j| timers[j].theta().map(|t| t + sw))
                .sum();
            let bound = sw + (n - 1) * sw + timer_terms;
            prop_assert!(
                stats.cores[i].worst_request.get() <= bound,
                "core {} observed {} > bound {} (timers {:?})",
                i, stats.cores[i].worst_request.get(), bound, timers
            );
        }
    }

    /// Identical inputs produce identical outputs (bit-for-bit determinism).
    #[test]
    fn simulation_is_deterministic(
        workload in workload_strategy(2),
        timers in proptest::collection::vec(timer_strategy(), 2),
    ) {
        let config = SimConfig::builder(2).timers(timers).build().expect("valid");
        let a = Simulator::new(config.clone(), &workload).expect("sim").run().expect("ok");
        let b = Simulator::new(config, &workload).expect("sim").run().expect("ok");
        prop_assert_eq!(a, b);
    }

    /// Timer switches mid-run never break termination or invariants.
    #[test]
    fn timer_switches_are_safe(
        rounds in 2usize..20,
        switch_at in 1u64..2_000,
        theta in 1u64..200,
    ) {
        let workload = micro::ping_pong(3, rounds);
        let config = SimConfig::builder(3)
            .timers(vec![TimerValue::timed(theta).expect("small"); 3])
            .build()
            .expect("valid");
        let mut sim = Simulator::new(config, &workload).expect("sim");
        sim.schedule_timer_switch(Cycles::new(switch_at), vec![TimerValue::MSI; 3])
            .expect("future switch");
        let stats = sim.run().expect("no deadlock");
        sim.validate_coherence().expect("invariants hold");
        for core in &stats.cores {
            prop_assert_eq!(core.accesses(), rounds as u64);
        }
    }

    /// Raising a core's timer never decreases that core's own hit count on
    /// a fixed workload (the monotonicity the optimization engine relies
    /// on, observed end-to-end in the simulator).
    #[test]
    fn larger_timer_never_hurts_own_hits_in_two_core_pingpong(
        small in 1u64..40,
        extra in 1u64..200,
    ) {
        // c0 writes then revisits a line c1 keeps stealing.
        let c0: Trace = (0..20).map(|_| TraceOp::store(0).after(7)).collect();
        let c1: Trace = (0..20).map(|_| TraceOp::store(0).after(7)).collect();
        let workload = Workload::new("pp", vec![c0, c1]).expect("two cores");
        let run = |theta: u64| {
            let config = SimConfig::builder(2)
                .timer(0, TimerValue::timed(theta).expect("small"))
                .build()
                .expect("valid");
            Simulator::new(config, &workload).expect("sim").run().expect("ok").cores[0].hits
        };
        prop_assert!(run(small + extra) >= run(small));
    }
}
