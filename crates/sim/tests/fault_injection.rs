//! Fault-injection integration tests.
//!
//! Three families:
//!
//! 1. **Bit-identity** — a simulator built with [`FaultPlan::empty`] must be
//!    indistinguishable (event log, metrics report, statistics) from one
//!    built without a plan, across heterogeneous presets and random
//!    workloads.
//! 2. **Detection** — each [`FaultKind`] on a minimal micro-trace is caught
//!    by the matching detector ([`InvariantProbe`] for protocol-level
//!    corruption, [`WcmlGuard`] for timing/latency corruption). Where a
//!    fault kind mirrors one of `cohort-verif`'s model-checker mutations,
//!    the test names the mutation slug so the two layers stay in sync.
//! 3. **Determinism** — the same seeded campaign injects the same faults and
//!    produces the same run, twice.

use proptest::prelude::*;

use cohort_sim::{
    CacheGeometry, EventLogProbe, FaultKind, FaultPlan, FaultSpec, InvariantKind, InvariantProbe,
    LlcModel, MetricsProbe, ProtocolFlavor, SimBuilder, SimConfig, SimProbe, Simulator, WcmlGuard,
    WcmlViolationKind,
};
use cohort_trace::{micro, Trace, TraceOp, Workload};
use cohort_types::{Cycles, TimerValue};

fn timed(theta: u64) -> TimerValue {
    TimerValue::timed(theta).expect("θ fits in 16 bits")
}

/// Two cores, both time-based with the same θ. With the paper latencies
/// (SW = 54) and θ = 50 the Eq. 1 bound is 2·54 + (50 + 54) = 212.
fn two_timed(theta: u64) -> SimConfig {
    SimConfig::builder(2).timers(vec![timed(theta); 2]).build().expect("valid config")
}

fn duet(name: &str, c0: Vec<TraceOp>, c1: Vec<TraceOp>) -> Workload {
    Workload::new(name, vec![Trace::from_ops(c0), Trace::from_ops(c1)]).expect("two traces")
}

fn spec(kind: FaultKind, core: usize, at: u64) -> FaultSpec {
    FaultSpec { kind, core, at: Cycles::new(at) }
}

// ---------------------------------------------------------------------------
// 1. Bit-identity of the empty plan
// ---------------------------------------------------------------------------

/// Runs `workload` twice — once without a plan, once with the empty plan —
/// and asserts the runs are indistinguishable.
fn assert_empty_plan_identity(config: SimConfig, workload: &Workload) {
    let mut plain = Simulator::with_probe(
        config.clone(),
        workload,
        (EventLogProbe::new(), MetricsProbe::new()),
    )
    .expect("plain sim");
    let plain_stats = plain.run().expect("plain run");

    let mut faulted = Simulator::with_probe_and_faults(
        config,
        workload,
        (EventLogProbe::new(), MetricsProbe::new()),
        FaultPlan::empty(),
    )
    .expect("empty-plan sim");
    let faulted_stats = faulted.run().expect("empty-plan run");

    assert_eq!(plain_stats, faulted_stats, "statistics diverge");
    assert_eq!(plain.probe().0.to_vec(), faulted.probe().0.to_vec(), "event logs diverge");
    assert_eq!(plain.probe().1.report(), faulted.probe().1.report(), "metrics diverge");
    assert!(faulted.injected_faults().is_empty());
}

#[test]
fn empty_plan_is_bit_identical_on_mixed_timer_preset() {
    let config = SimConfig::builder(4)
        .timer(0, timed(300))
        .timer(1, timed(100))
        .build()
        .expect("valid config");
    assert_empty_plan_identity(config, &micro::ping_pong(4, 12));
}

#[test]
fn empty_plan_is_bit_identical_on_all_msi_preset() {
    let config = SimConfig::builder(2).build().expect("valid config");
    assert_empty_plan_identity(config, &micro::line_bursts(2, 6, 20));
}

#[test]
fn empty_plan_is_bit_identical_on_mesi_finite_llc_preset() {
    let config = SimConfig::builder(2)
        .flavor(ProtocolFlavor::Mesi)
        .llc(LlcModel::Finite(CacheGeometry::paper_llc()))
        .timers(vec![timed(80); 2])
        .build()
        .expect("valid config");
    assert_empty_plan_identity(config, &micro::ping_pong(2, 10));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The bit-identity contract holds on arbitrary shared-line workloads.
    #[test]
    fn empty_plan_is_bit_identical_on_random_workloads(
        cores in 1usize..4,
        lines in 1u64..6,
        len in 1usize..24,
        store_milli in 0u64..=1000,
        seed in 0u64..1_000,
    ) {
        let workload =
            micro::random_shared(cores, lines, len, store_milli as f64 / 1000.0, seed);
        let config = SimConfig::builder(cores).build().expect("valid config");
        assert_empty_plan_identity(config, &workload);
    }
}

// ---------------------------------------------------------------------------
// 2. Per-kind detection on minimal micro-traces
// ---------------------------------------------------------------------------

fn latency_violations_for(guard: &WcmlGuard, core: usize) -> usize {
    guard
        .violations()
        .iter()
        .filter(|v| v.kind == WcmlViolationKind::LatencyBound && v.core == Some(core))
        .count()
}

#[test]
fn bus_drop_storm_breaks_the_latency_bound() {
    // 80 dropped grants burn ≥ 4 bus cycles each before c0's store can
    // broadcast, pushing its fill far past the 212-cycle Eq. 1 bound.
    let plan = FaultPlan::new(vec![spec(FaultKind::BusDrop, 0, 1); 80]);
    let w = duet("bus-drop", vec![TraceOp::store(1).after(10)], vec![TraceOp::load(9)]);
    let mut guard = WcmlGuard::new();
    let mut sim =
        Simulator::with_probe_and_faults(two_timed(50), &w, &mut guard, plan).expect("sim");
    sim.run().expect("run completes despite drops");
    assert_eq!(
        sim.injected_faults().iter().filter(|f| f.kind == FaultKind::BusDrop).count(),
        80,
        "every drop was consumed"
    );
    drop(sim);
    assert!(latency_violations_for(&guard, 0) > 0, "the storm must convict core 0");
}

#[test]
fn bus_duplicate_storm_breaks_the_latency_bound() {
    // 60 duplicated broadcasts extend c0's first tenure by 60 × 4 = 240
    // bus cycles — alone already above the 212-cycle bound.
    let plan = FaultPlan::new(vec![spec(FaultKind::BusDuplicate, 0, 1); 60]);
    let w = duet("bus-duplicate", vec![TraceOp::store(1).after(10)], vec![TraceOp::load(9)]);
    let mut guard = WcmlGuard::new();
    let mut sim =
        Simulator::with_probe_and_faults(two_timed(50), &w, &mut guard, plan).expect("sim");
    sim.run().expect("run completes");
    assert!(sim.injected_faults().iter().all(|f| f.kind == FaultKind::BusDuplicate));
    drop(sim);
    assert!(latency_violations_for(&guard, 0) > 0);
}

#[test]
fn bus_delay_breaks_the_latency_bound() {
    let plan = FaultPlan::new(vec![spec(FaultKind::BusDelay { cycles: 5_000 }, 0, 1)]);
    let w = duet("bus-delay", vec![TraceOp::store(1).after(10)], vec![TraceOp::load(9)]);
    let mut guard = WcmlGuard::new();
    let mut sim =
        Simulator::with_probe_and_faults(two_timed(50), &w, &mut guard, plan).expect("sim");
    sim.run().expect("run completes");
    assert_eq!(sim.injected_faults().len(), 1);
    drop(sim);
    let v = guard
        .violations()
        .iter()
        .find(|v| v.kind == WcmlViolationKind::LatencyBound)
        .expect("jammed bus convicts");
    assert!(v.latency >= 5_000, "observed latency carries the injected delay");
}

#[test]
fn line_corruption_is_detected_as_swmr_violation() {
    // Both cores hold line 5 Shared; c0's copy silently flips to Modified.
    // The synthetic write-granting fill leaves c1's copy alive — the SWMR
    // violation the model checker provokes with its `skip-invalidation`
    // mutation.
    let plan = FaultPlan::new(vec![spec(FaultKind::LineCorruption, 0, 300)]);
    let w = duet(
        "line-corruption",
        vec![TraceOp::load(5), TraceOp::load(6).after(600)],
        vec![TraceOp::load(5).after(60)],
    );
    let mut probe = InvariantProbe::new();
    let config = SimConfig::builder(2).build().expect("valid config");
    let mut sim = Simulator::with_probe_and_faults(config, &w, &mut probe, plan).expect("sim");
    sim.run().expect("run completes");
    assert_eq!(sim.injected_faults().len(), 1, "the corruption fired");
    assert!(
        sim.validate_coherence().is_err(),
        "deep validation sees the duplicate write permission"
    );
    drop(sim);
    assert!(
        probe.violations().iter().any(|v| v.kind == InvariantKind::Swmr),
        "corruption must surface as an SWMR violation, got {:?}",
        probe.violations()
    );
}

#[test]
fn spurious_eviction_is_detected_as_data_value_violation() {
    // c0 owns line 5 Modified; the line silently drops out of its L1 with
    // no writeback event. When c1 later fetches the line, the data source
    // disagrees with the shadow owner — the `skip-evict-writeback`
    // divergence of the model checker.
    let plan = FaultPlan::new(vec![spec(FaultKind::SpuriousEviction, 0, 300)]);
    let w = duet("spurious-eviction", vec![TraceOp::store(5)], vec![TraceOp::load(5).after(800)]);
    let mut probe = InvariantProbe::new();
    let config = SimConfig::builder(2).build().expect("valid config");
    let mut sim = Simulator::with_probe_and_faults(config, &w, &mut probe, plan).expect("sim");
    sim.run().expect("run completes");
    assert_eq!(sim.injected_faults().len(), 1, "the eviction fired");
    drop(sim);
    assert!(
        probe.violations().iter().any(|v| v.kind == InvariantKind::DataValue),
        "silent eviction must surface as a data-value violation, got {:?}",
        probe.violations()
    );
}

#[test]
fn timer_early_expiry_is_detected_as_timer_protection_violation() {
    // c0 holds line 5 under θ = 5000; c1's store arrives at ~100. The
    // early-expiry window serves the dispossession immediately — the
    // engine-level twin of the checker's `ignore-timer-protection`
    // mutation, convicted by the invariant probe's release-time check.
    let plan = FaultPlan::new(vec![spec(FaultKind::TimerEarlyExpiry { cycles: 2_000 }, 0, 100)]);
    let w = duet("timer-early-expiry", vec![TraceOp::store(5)], vec![TraceOp::store(5).after(100)]);
    let config = SimConfig::builder(2)
        .timer(0, timed(5_000))
        .timer(1, timed(50))
        .build()
        .expect("valid config");
    let mut probe = InvariantProbe::new();
    let mut sim = Simulator::with_probe_and_faults(config, &w, &mut probe, plan).expect("sim");
    sim.run().expect("run completes");
    assert_eq!(sim.injected_faults().len(), 1);
    drop(sim);
    assert!(
        probe.violations().iter().any(|v| v.kind == InvariantKind::TimerProtection),
        "early expiry must surface as a timer-protection violation, got {:?}",
        probe.violations()
    );
}

#[test]
fn timer_stuck_is_detected_as_liveness_violation() {
    // c0's timer refuses to expire for 100k cycles, so c1's queued store is
    // never served within the observation window — the checker's
    // `drop-timer-expiry` liveness failure, seen by the shadow waiter
    // bookkeeping when the run is cut off.
    let plan = FaultPlan::new(vec![spec(FaultKind::TimerStuck { cycles: 100_000 }, 0, 10)]);
    let w = duet("timer-stuck", vec![TraceOp::store(5)], vec![TraceOp::store(5).after(50)]);
    let config = SimConfig::builder(2).timers(vec![timed(100); 2]).build().expect("valid config");
    let mut probe = InvariantProbe::new();
    let mut sim = Simulator::with_probe_and_faults(config, &w, &mut probe, plan).expect("sim");
    sim.run_until(Cycles::new(5_000)).expect("bounded run");
    assert!(!sim.is_finished(), "the stuck timer must stall c1 past the horizon");
    let stats = sim.stats().clone();
    sim.probe_mut().on_finish(&stats);
    assert!(
        sim.probe().violations().iter().any(|v| v.kind == InvariantKind::Liveness),
        "the unserved waiter must surface as a liveness violation, got {:?}",
        sim.probe().violations()
    );
}

#[test]
fn timer_corruption_starves_the_victim_core() {
    // c0's θ register is silently rewritten from 50 to 20 000 before its
    // fill; c1 then waits nearly 20 000 cycles for the line — far beyond
    // the 212-cycle bound derived from the *programmed* registers. The
    // conviction lands on the victim, not the corrupted core.
    let plan =
        FaultPlan::new(vec![spec(FaultKind::TimerCorruption { value: timed(20_000) }, 0, 10)]);
    let w = duet(
        "timer-corruption",
        vec![TraceOp::store(5).after(20)],
        vec![TraceOp::store(5).after(100)],
    );
    let mut guard = WcmlGuard::new();
    let mut sim =
        Simulator::with_probe_and_faults(two_timed(50), &w, &mut guard, plan).expect("sim");
    sim.run().expect("run completes");
    assert_eq!(sim.injected_faults().len(), 1);
    drop(sim);
    let v = guard
        .violations()
        .iter()
        .find(|v| v.kind == WcmlViolationKind::LatencyBound)
        .expect("the starved victim convicts");
    assert_eq!(v.core, Some(1), "the conviction names the waiting core");
    assert!(v.latency > 10_000, "latency reflects the corrupted θ");
}

#[test]
fn core_stall_is_detected_as_progress_violation() {
    // c0's pipeline freezes for 50k cycles before its only access; the
    // driver-polled progress check convicts the silence.
    let plan = FaultPlan::new(vec![spec(FaultKind::CoreStall { cycles: 50_000 }, 0, 5)]);
    let w = duet("core-stall", vec![TraceOp::load(1).after(10)], vec![TraceOp::load(2)]);
    let mut guard = WcmlGuard::new().with_progress_timeout(10_000);
    let mut sim =
        Simulator::with_probe_and_faults(two_timed(50), &w, &mut guard, plan).expect("sim");
    let mut slices = 0;
    while !sim.is_finished() && slices < 200 {
        let deadline = sim.now() + Cycles::new(1_000);
        sim.run_until(deadline).expect("slice runs");
        let active: Vec<bool> =
            sim.stats().cores.iter().map(|c| c.finish == Cycles::ZERO).collect();
        let now = sim.now();
        sim.probe_mut().check_progress(now, &active);
        slices += 1;
    }
    assert!(sim.is_finished(), "the stall is bounded, the run must finish");
    assert!(sim.injected_faults().iter().any(|f| matches!(f.kind, FaultKind::CoreStall { .. })));
    drop(sim);
    assert!(
        guard.violations().iter().any(|v| v.kind == WcmlViolationKind::Progress),
        "the stall must convict progress, got {:?}",
        guard.violations()
    );
}

// ---------------------------------------------------------------------------
// 3. Seeded campaign determinism
// ---------------------------------------------------------------------------

#[test]
fn seeded_campaign_is_deterministic() {
    let config = || {
        SimConfig::builder(4)
            .timer(0, timed(300))
            .timer(1, timed(100))
            .build()
            .expect("valid config")
    };
    let w = micro::ping_pong(4, 40);
    let plan = FaultPlan::seeded(0xC0FF_EE00, 4, 5_000, 6);
    assert_eq!(plan, FaultPlan::seeded(0xC0FF_EE00, 4, 5_000, 6), "plan derivation is pure");

    let run = |plan: FaultPlan| {
        let mut sim = Simulator::with_probe_and_faults(config(), &w, EventLogProbe::new(), plan)
            .expect("sim");
        let stats = sim.run().expect("run completes");
        (stats, sim.injected_faults().to_vec(), sim.probe().to_vec())
    };
    let (stats_a, injected_a, events_a) = run(plan.clone());
    let (stats_b, injected_b, events_b) = run(plan);
    assert_eq!(stats_a, stats_b, "statistics diverge across identical campaigns");
    assert_eq!(injected_a, injected_b, "injection logs diverge");
    assert_eq!(events_a, events_b, "event logs diverge");
}

#[test]
fn plans_targeting_missing_cores_are_rejected() {
    let plan = FaultPlan::new(vec![spec(FaultKind::BusDrop, 7, 1)]);
    let config = SimConfig::builder(2).build().expect("valid config");
    let w = micro::ping_pong(2, 4);
    assert!(SimBuilder::new(config, &w).faults(plan).build().is_err());
}
