//! Requirement-aware timer optimization for an avionics-style system
//! (DO-178C: five assurance levels). Two flight-critical partitions carry
//! explicit WCML budgets; the display partition is timed but
//! unconstrained; two maintenance partitions run plain MSI. The genetic
//! algorithm (§V) finds timers that satisfy the budgets while minimising
//! the system's average worst-case latency.
//!
//! ```text
//! cargo run --release --example optimize_timers
//! ```

use cohort_analysis::wcl_miss;
use cohort_optim::{optimize_timers, GaConfig, TimerProblem};
use cohort_trace::{Kernel, KernelSpec};
use cohort_types::{Cycles, LatencyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = KernelSpec::new(Kernel::Water, 5).with_total_requests(10_000).generate();

    // Derive budgets the way an integrator would: a slack factor over the
    // bound at a small reference timer.
    let reference = {
        let timers: Vec<_> = (0..5)
            .map(|i| {
                if i < 3 {
                    cohort_types::TimerValue::timed(20).expect("small")
                } else {
                    cohort_types::TimerValue::MSI
                }
            })
            .collect();
        cohort_analysis::analyze_cohort(
            &workload,
            &timers,
            &LatencyConfig::paper(),
            &cohort_sim::CacheGeometry::paper_l1(),
            &cohort_sim::LlcModel::Perfect,
        )?
    };
    let budget = |core: usize, slack_pct: u64| {
        Cycles::new(reference[core].wcml.expect("bounded").get() * slack_pct / 100)
    };

    let problem = TimerProblem::builder(&workload)
        .timed(0, Some(budget(0, 110))) // DAL-A: 10% slack over the reference
        .timed(1, Some(budget(1, 125))) // DAL-B: 25% slack
        .timed(2, None) //                 display: maximise hits, no budget
        .build()?;
    println!("Search space (θ_sat per timed core): {:?}", problem.theta_saturations());

    let ga = GaConfig { population: 24, generations: 20, ..Default::default() };
    let assignment = optimize_timers(&problem, &ga)?;

    println!("\ncore  θ        guaranteed hits  misses   WCL (Eq.1)   WCML bound");
    for (i, bound) in assignment.bounds.iter().enumerate() {
        println!(
            "c{i}    {:<8} {:>15} {:>7} {:>12} {:>12}",
            assignment.timers[i].to_string(),
            bound.hits,
            bound.misses,
            bound.wcl.expect("bounded").get(),
            bound.wcml.expect("bounded").get(),
        );
    }
    assert!(assignment.feasible);
    println!("\nBudgets:");
    for (core, slack) in [(0usize, 110u64), (1, 125)] {
        let gamma = budget(core, slack);
        let wcml = assignment.bounds[core].wcml.expect("bounded");
        println!(
            "  c{core}: WCML {} ≤ Γ {}  (margin {:.1}%)",
            wcml.get(),
            gamma.get(),
            100.0 * (gamma.get() - wcml.get()) as f64 / gamma.get() as f64
        );
    }

    // The trade-off in numbers: every timed core's θ appears in the other
    // cores' Eq. 1 bounds, so "more hits for me" is "more latency for you".
    let wcl_c4 = wcl_miss(4, &assignment.timers, &LatencyConfig::paper());
    println!("\nThe MSI maintenance core c4 pays {} cycles per request in the worst", wcl_c4.get());
    println!("case — the price of its neighbours' timer windows.");
    Ok(())
}
