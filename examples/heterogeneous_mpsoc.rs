//! Heterogeneous MPSoC sharing (the paper's Challenge 1): two latency-
//! sensitive real-time cores coexist with two throughput-oriented
//! accelerator-style cores that stream a shared buffer. Time-based
//! coherence suits the streaming cores (they batch hits on lines before
//! giving them up); MSI suits the latency-sensitive cores. CoHoRT runs both
//! protocols in the same coherent system — this example compares the
//! heterogeneous configuration against forcing a single protocol on
//! everyone.
//!
//! ```text
//! cargo run --release --example heterogeneous_mpsoc
//! ```

use cohort::{run_experiment, Protocol, SystemSpec};
use cohort_trace::{Trace, TraceOp, Workload};
use cohort_types::{Criticality, TimerValue};

fn workload() -> Workload {
    // c0/c1: latency-sensitive control loops — short private bursts plus
    // constant polling of both streamers' output buffers (GetS snoops that
    // demote the producers' Modified lines).
    let control = |base: u64, poll: u64| -> Trace {
        let mut ops = Vec::new();
        for i in 0..500u64 {
            ops.push(TraceOp::store(base + i % 16).after(6));
            ops.push(TraceOp::load(base + i % 16).after(2));
            ops.push(TraceOp::load(0x40 + (i + poll) % 12).after(2));
            ops.push(TraceOp::load(0x50 + (i + poll) % 12).after(2));
        }
        Trace::from_ops(ops)
    };
    // c2/c3: streaming producers — read-modify-write bursts over their own
    // output buffers (classic accelerator shape). Under MSI every consumer
    // poll demotes the producer's line, turning the burst's second write
    // into an upgrade miss; a timer holds the line through the burst.
    let streamer = |base: u64| -> Trace {
        let mut ops = Vec::new();
        for i in 0..250u64 {
            let line = base + i % 12;
            ops.push(TraceOp::store(line).after(4));
            ops.push(TraceOp::load(line).after(3));
            ops.push(TraceOp::store(line).after(3));
            ops.push(TraceOp::load(line).after(3));
        }
        Trace::from_ops(ops)
    };
    Workload::new(
        "mpsoc",
        vec![control(0x1000, 0), control(0x2000, 6), streamer(0x40), streamer(0x50)],
    )
    .expect("non-empty")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SystemSpec::builder()
        .core(Criticality::new(2)?)
        .core(Criticality::new(2)?)
        .core(Criticality::new(1)?)
        .core(Criticality::new(1)?)
        .build()?;
    let w = workload();

    let configurations = [
        (
            "heterogeneous (CoHoRT): CPUs MSI, streamers timed",
            vec![TimerValue::MSI, TimerValue::MSI, TimerValue::timed(30)?, TimerValue::timed(30)?],
        ),
        ("uniform snooping: everyone MSI", vec![TimerValue::MSI; 4]),
        ("uniform time-based: everyone θ = 30", vec![TimerValue::timed(30)?; 4]),
    ];

    println!(
        "{:<52} {:>10} {:>12} {:>14}",
        "configuration", "exec time", "c0 WCL obs", "c2+c3 hits"
    );
    for (name, timers) in configurations {
        let outcome = run_experiment(&spec, &Protocol::Cohort { timers }, &w)?;
        outcome.check_soundness().map_err(std::io::Error::other)?;
        println!(
            "{:<52} {:>10} {:>12} {:>14}",
            name,
            outcome.execution_time(),
            outcome.stats.cores[0].worst_request.get(),
            outcome.stats.cores[2].hits + outcome.stats.cores[3].hits,
        );
    }
    println!();
    println!("The heterogeneous configuration finishes fastest: the streamers keep");
    println!("the burst hits their timers protect (uniform MSI loses them to the");
    println!("consumers' polls), while the control cores avoid the timer-induced");
    println!("stalls a uniform time-based system would impose on their polls — the");
    println!("motivation for combining both protocol families in one system (§III-A).");
    Ok(())
}
