//! An automotive scenario (ISO-26262-style, four integrity levels): a
//! driver-assistance stack whose emergency-braking task tightens its memory
//! budget when the vehicle enters a high-speed zone. Instead of suspending
//! the infotainment and logging tasks, the CoHoRT mode controller degrades
//! their cores to MSI coherence — they keep running, the braking core's
//! bound tightens.
//!
//! ```text
//! cargo run --release --example adas_mode_switch
//! ```

use cohort::{ModeController, ModeDecision, ModeSetup, Protocol, SystemSpec};
use cohort_optim::GaConfig;
use cohort_trace::{Kernel, KernelSpec};
use cohort_types::{CoreId, Criticality, Cycles};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ASIL D (braking) > ASIL B (lane keep) > ASIL A (telemetry) > QM
    // (infotainment), mapped to criticalities 4..1.
    let spec = SystemSpec::builder()
        .core(Criticality::new(4)?) // c0: emergency braking
        .core(Criticality::new(3)?) // c1: lane keeping
        .core(Criticality::new(2)?) // c2: telemetry
        .core(Criticality::new(1)?) // c3: infotainment
        .build()?;
    let workload = KernelSpec::new(Kernel::Barnes, 4).with_total_requests(12_000).generate();

    // Offline (Fig. 2a): one GA run per mode fills the Mode-Switch LUT.
    let ga = GaConfig { population: 16, generations: 10, ..Default::default() };
    let config = ModeSetup::new(&spec, &workload).ga(&ga).run()?;
    println!("Mode-Switch LUT (θ per core; -1 = degraded to MSI):");
    for entry in &config.entries {
        let row: Vec<String> = entry.timers.iter().map(ToString::to_string).collect();
        println!("  mode {}: [{}]", entry.mode.index(), row.join(", "));
    }

    let braking = CoreId::new(0);
    let bound = |m: u32| {
        config
            .wcml_bound(braking, cohort_types::Mode::new(m).expect("static"))
            .expect("mode exists")
            .expect("braking core is bounded")
    };

    // Run time: city driving → highway → emergency zone.
    let mut controller = ModeController::new(config.clone());
    let scenarios = [
        ("city driving", Cycles::new(bound(1).get() + 1_000)),
        ("highway entry", Cycles::new(u64::midpoint(bound(2).get(), bound(3).get()))),
        ("emergency zone", Cycles::new(bound(4).get() + 100)),
    ];
    println!("\nscenario          braking budget     decision");
    for (name, budget) in scenarios {
        let decision = controller.requirement_changed(braking, budget)?;
        let what = match decision {
            ModeDecision::Stay(m) => format!("stay in {m} (bound already fits)"),
            ModeDecision::Escalate(m) => {
                format!("escalate to {m} — lower-criticality cores degrade to MSI, none suspended")
            }
            ModeDecision::Unschedulable => "UNSCHEDULABLE — no mode fits".to_string(),
        };
        println!("{name:<17} {:>14}     {what}", budget.get());
    }

    // Confirm with the simulator that the final mode's configuration is
    // sound and that every core — including infotainment — completed.
    let mode = controller.current();
    let timers = config.lut.timers_for(mode)?.to_vec();
    let outcome = cohort::run_experiment(&spec, &Protocol::Cohort { timers }, &workload)?;
    outcome.check_soundness().map_err(std::io::Error::other)?;
    println!("\nAt {mode}: all four tasks completed — infotainment made");
    println!(
        "{} accesses ({} hits) despite running without guarantees.",
        outcome.stats.cores[3].accesses(),
        outcome.stats.cores[3].hits
    );
    Ok(())
}
