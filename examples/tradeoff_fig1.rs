//! Replays the paper's Figure-1 scenario through the event log: the
//! fundamental trade-off between snoop-based and time-based coherence.
//!
//! ```text
//! cargo run --release --example tradeoff_fig1
//! ```

use cohort_sim::{EventKind, EventLogProbe, SimBuilder, SimConfig};
use cohort_trace::micro;
use cohort_types::TimerValue;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = micro::figure1(100);

    println!("The Figure-1 scenario: c0 stores line A (①), c1 requests it (②),");
    println!("and c0 revisits it (③) one hundred cycles later.\n");

    for (label, timer) in
        [("snoop-based", TimerValue::MSI), ("time-based", TimerValue::timed(200)?)]
    {
        let config = SimConfig::builder(2).timer(0, timer).build()?;
        let mut sim = SimBuilder::new(config, &workload).probe(EventLogProbe::new()).build()?;
        let stats = sim.run()?;
        let c1_fill = sim
            .probe()
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Fill { core: 1, latency, .. } => Some(latency.get()),
                _ => None,
            })
            .expect("c1 is served");
        println!(
            "{label:<12} θ0 = {:>4}: request ③ {}, c1's miss latency {} cycles",
            timer.to_string(),
            if stats.cores[0].hits > 0 { "HITS " } else { "misses" },
            c1_fill
        );
    }

    println!("\nExactly the paper's observation: the snooping protocol minimises the");
    println!("interferer's miss latency but destroys the owner's locality; the timer");
    println!("preserves the owner's hits at the cost of a longer worst-case miss.");
    Ok(())
}
