//! Quickstart: build a heterogeneous quad-core CoHoRT system, simulate a
//! workload, and compare measured worst-case memory latency against the
//! analytical bounds.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cohort::{run_experiment, Protocol, SystemSpec};
use cohort_trace::{Kernel, KernelSpec};
use cohort_types::{Criticality, TimerValue};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The platform: four cores, two criticality levels, the paper's
    //    latencies (hit 1, request 4, data 50 → slot width 54).
    let spec = SystemSpec::builder()
        .core(Criticality::new(2)?) // c0: critical
        .core(Criticality::new(2)?) // c1: critical
        .core(Criticality::new(1)?) // c2: best-effort
        .core(Criticality::new(1)?) // c3: best-effort
        .build()?;

    // 2. A workload: a synthetic fft-like kernel, one thread per core.
    let workload = KernelSpec::new(Kernel::Fft, 4).with_total_requests(8_000).generate();

    // 3. The protocol: heterogeneous coherence. Critical cores run
    //    time-based coherence (θ protects their lines, making hits
    //    guaranteeable); best-effort cores run plain MSI (θ = −1).
    let timers =
        vec![TimerValue::timed(24)?, TimerValue::timed(24)?, TimerValue::MSI, TimerValue::MSI];
    let outcome = run_experiment(&spec, &Protocol::Cohort { timers }, &workload)?;

    // 4. Results: measured (simulator) vs analytical (Eq. 1 + Eq. 2/3).
    println!("core  role      hits  misses   measured WCML   analytical bound");
    let bounds = outcome.bounds.as_ref().expect("CoHoRT is analysable");
    for (i, (core, bound)) in outcome.stats.cores.iter().zip(bounds).enumerate() {
        println!(
            "c{i}    {:<8} {:>6} {:>7} {:>15} {:>18}",
            if i < 2 { "timed" } else { "MSI" },
            core.hits,
            core.misses,
            core.total_latency.get(),
            bound.wcml.expect("all cores bounded").get(),
        );
    }

    // The defining guarantee: measurements never exceed the bounds.
    outcome.check_soundness().map_err(std::io::Error::other)?;
    println!("\nAll measurements are within their analytical bounds.");
    println!(
        "Execution time: {} cycles; bus utilisation {:.0}%.",
        outcome.execution_time(),
        outcome.stats.bus_utilisation() * 100.0
    );
    Ok(())
}
