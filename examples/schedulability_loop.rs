//! The full integration loop a system designer runs:
//!
//! 1. **Schedulability** — fixed-priority RTA tells each critical task how
//!    much worst-case memory latency it can afford (its Γ);
//! 2. **Optimization** — the GA configures the coherence timers so every
//!    task's WCML bound fits its Γ (§V);
//! 3. **Verification** — the cycle-accurate simulator confirms the measured
//!    latencies sit under the bounds;
//! 4. **Closure** — the bounds feed back into the RTA: the task set is
//!    schedulable on the configured hardware.
//!
//! ```text
//! cargo run --release --example schedulability_loop
//! ```

use cohort::{run_experiment, Protocol, SystemSpec};
use cohort_analysis::{is_schedulable, max_affordable_wcml, response_times, PeriodicTask};
use cohort_optim::{optimize_timers, GaConfig, TimerProblem};
use cohort_trace::{Kernel, KernelSpec};
use cohort_types::Criticality;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = KernelSpec::new(Kernel::Ocean, 2).with_total_requests(6_000).generate();

    // Two critical tasks, one per core, with compute WCETs and periods.
    // Memory budgets start as placeholders; the RTA derives the real ones.
    let mut tasks = vec![
        PeriodicTask::new("brake-control", 2_000_000, 300_000, 0)?,
        PeriodicTask::new("trajectory", 8_000_000, 1_200_000, 0)?,
    ];

    // 1. How much memory latency can each task afford?
    let mut budgets = Vec::new();
    for i in 0..tasks.len() {
        let gamma = max_affordable_wcml(&mut tasks, i)?
            .ok_or_else(|| std::io::Error::other("task set unschedulable even with free memory"))?;
        println!(
            "{:<14} period {:>9}  compute {:>9}  affordable Γ = {}",
            tasks[i].name,
            tasks[i].period.get(),
            tasks[i].compute.get(),
            gamma.get()
        );
        budgets.push(gamma);
    }

    // 2. Configure the coherence timers against those budgets.
    let problem = TimerProblem::builder(&workload)
        .timed(0, Some(budgets[0]))
        .timed(1, Some(budgets[1]))
        .build()?;
    let ga = GaConfig { population: 24, generations: 15, ..Default::default() };
    let assignment = optimize_timers(&problem, &ga)?;
    println!(
        "\noptimized timers: [{}]",
        assignment.timers.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    );

    // 3. Verify in the cycle-accurate simulator.
    let spec =
        SystemSpec::builder().core(Criticality::new(2)?).core(Criticality::new(2)?).build()?;
    let outcome =
        run_experiment(&spec, &Protocol::Cohort { timers: assignment.timers.clone() }, &workload)?;
    outcome.check_soundness().map_err(std::io::Error::other)?;

    // 4. Close the loop: plug the analytical WCML bounds back into the RTA.
    for (task, bound) in tasks.iter_mut().zip(&assignment.bounds) {
        task.wcml = bound.wcml.expect("timed cores are bounded");
    }
    let responses = response_times(&tasks)?;
    println!("\ntask            WCML bound    response time    period   ");
    for (task, response) in tasks.iter().zip(&responses) {
        println!(
            "{:<14} {:>11} {:>16} {:>9}",
            task.name,
            task.wcml.get(),
            response.map_or_else(|| "MISSED".into(), |r| r.get().to_string()),
            task.period.get()
        );
    }
    assert!(is_schedulable(&tasks)?);
    println!("\nThe task set is schedulable on the configured hardware, and the");
    println!("simulator confirmed every measured latency sits under its bound.");
    Ok(())
}
