//! Offline stand-in for the `loom` model checker.
//!
//! The real loom runs a test body under every legal interleaving of its
//! modeled `sync` primitives. This stub cannot do that without the
//! crates-io dependency tree, so it degrades to *stress* semantics:
//! [`model`] runs the closure many times with real OS threads and real
//! `std::sync` primitives, which still catches gross races, deadlocks and
//! panics. CI with network access swaps in genuine loom and gets
//! exhaustive interleaving coverage from the identical test source.

/// Number of stress iterations standing in for loom's exhaustive
/// exploration.
const STRESS_ITERATIONS: usize = 64;

/// Runs `f` repeatedly, as a stress stand-in for loom's exhaustive
/// interleaving exploration.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..STRESS_ITERATIONS {
        f();
    }
}

/// Mirrors `loom::sync`: the real crate substitutes modeled primitives;
/// the stub passes `std::sync` straight through.
pub mod sync {
    pub use std::sync::{
        Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard,
        RwLockWriteGuard, TryLockError, TryLockResult,
    };

    /// Mirrors `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::*;
    }
}

/// Mirrors `loom::thread`: real OS threads under the stub.
pub mod thread {
    pub use std::thread::*;
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_the_body_with_real_threads() {
        let total = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&total);
        super::model(move || {
            let counter = Arc::new(AtomicUsize::new(0));
            let c = Arc::clone(&counter);
            let t = super::thread::spawn(move || c.fetch_add(1, Ordering::SeqCst));
            counter.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 2);
            seen.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), super::STRESS_ITERATIONS);
    }
}
