//! Offline stub of `proptest`.
//!
//! The `proptest!` macro expands to NOTHING under this stub: property
//! bodies are discarded, so offline builds type-check strategy helper
//! functions but never execute properties (CI with the real crates-io
//! proptest runs them). Strategy combinators exist purely so helper
//! functions returning `impl Strategy<Value = T>` compile.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values of an associated type. Never executed offline.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values (type-check only under the stub).
    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Chains a dependent strategy (type-check only under the stub).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { marker: PhantomData }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    #[allow(dead_code)]
    inner: S,
    #[allow(dead_code)]
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    #[allow(dead_code)]
    inner: S,
    #[allow(dead_code)]
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    #[allow(dead_code)]
    inner: S,
    #[allow(dead_code)]
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
}

/// Type-erased strategy handle.
pub struct BoxedStrategy<V> {
    marker: PhantomData<fn() -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
}

/// Strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
    (A, B, C, D, E, G, H)
    (A, B, C, D, E, G, H, I)
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
}

/// Marker strategy returned by [`any`].
pub struct Any<T> {
    marker: PhantomData<fn() -> T>,
}

impl<T> Strategy for Any<T> {
    type Value = T;
}

impl<T> Default for Any<T> {
    fn default() -> Self {
        Any { marker: PhantomData }
    }
}

macro_rules! arbitrary_prims {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
        }
    )*};
}
arbitrary_prims!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char);

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::default()
}

/// Collection strategies.
pub mod collection {
    use super::{PhantomData, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Size argument accepted by [`vec`].
    pub trait IntoSizeRange {}
    impl IntoSizeRange for usize {}
    impl IntoSizeRange for Range<usize> {}
    impl IntoSizeRange for RangeInclusive<usize> {}

    /// Strategy for vectors of an element strategy.
    pub struct VecStrategy<S> {
        #[allow(dead_code)]
        element: S,
        marker: PhantomData<()>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
    }

    /// Vector strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, _size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { element, marker: PhantomData }
    }
}

/// Runner configuration (accepted, ignored offline).
#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    /// Number of cases the real runner would execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Test-case error type used by the real runner's signatures.
pub mod test_runner {
    /// Reason a case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError;
}

/// The offline stub expands property blocks to nothing: bodies are
/// discarded, properties run only in CI with the real crate.
#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}

/// Selects among strategies; the stub keeps the first arm for typing and
/// discards the rest (they still must type-check individually).
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        $( let _ = $rest; )*
        $first
    }};
}

/// Assertion macros usable inside property bodies.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Assumption filter inside property bodies (no-op reject offline).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Everything a test module typically imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}
