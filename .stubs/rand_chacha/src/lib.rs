//! Offline stub of `rand_chacha`.
//!
//! `ChaCha8Rng` here is NOT ChaCha — it is a splitmix64 stream with the
//! same trait surface (`RngCore` + `SeedableRng` with a 32-byte seed).
//! Deterministic per seed, which is all the workspace's seeded test and
//! workload generation relies on.

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator standing in for the real ChaCha8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: u64,
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // Fold the whole seed into the 64-bit state so distinct seeds give
        // distinct streams.
        let mut state = 0xCBF2_9CE4_8422_2325u64;
        for chunk in seed.chunks(8) {
            let mut eight = [0u8; 8];
            eight[..chunk.len()].copy_from_slice(chunk);
            state = (state ^ u64::from_le_bytes(eight)).wrapping_mul(0x1000_0000_01B3);
        }
        ChaCha8Rng { state }
    }
}

/// Alias used by some call sites; identical stream family.
pub type ChaCha20Rng = ChaCha8Rng;
/// Alias used by some call sites; identical stream family.
pub type ChaCha12Rng = ChaCha8Rng;
