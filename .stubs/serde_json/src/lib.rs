//! Offline stub of `serde_json`.
//!
//! Re-exports the stub `serde` value model and implements text
//! serialization, a recursive-descent JSON parser, and a `json!` macro.
//! Typed (derive-based) round-trips are unsupported: derived `Serialize`
//! renders `null` and derived `Deserialize` errors, which downstream
//! tests feature-detect and skip.

use std::fmt;

pub use serde::{Map, Value};

/// Error produced by this stub's parsing or serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

/// Result alias matching the real crate's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes any [`serde::Serialize`] value to compact JSON text.
///
/// # Errors
///
/// Never fails in the stub; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_stub_value().to_json_compact())
}

/// Serializes any [`serde::Serialize`] value to pretty-printed JSON text.
///
/// # Errors
///
/// Never fails in the stub; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_stub_value().to_json_pretty())
}

/// Parses JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Fails on malformed JSON, or (always) for derive-stubbed target types.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    T::from_stub_value(&value).map_err(Error::new)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<Value> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        let got = self.peek()?;
        if got == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char, self.pos, got as char
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b't' | b'f' | b'n' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}, got '{}'",
                        self.pos, c as char
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}, got '{}'",
                        self.pos, c as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("non-ascii \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        c => {
                            return Err(Error::new(format!("unknown escape '\\{}'", c as char)))
                        }
                    }
                }
                _ => {
                    // Collect the longest run of plain bytes as UTF-8.
                    let start = self.pos - 1;
                    while let Some(&nb) = self.bytes.get(self.pos) {
                        if nb == b'"' || nb == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid utf-8 in string"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected a value at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

/// Builds a [`Value`] from JSON-like syntax. Object and array literals
/// nest; values are arbitrary expressions converted via `Value::from`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}
