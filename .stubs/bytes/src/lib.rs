//! Offline stub of `bytes`.
//!
//! `Bytes`/`BytesMut` are plain `Vec<u8>` wrappers (no refcounted
//! zero-copy slicing) exposing exactly the `Buf`/`BufMut` subset the
//! trace codec relies on. Little-endian accessors match the real crate's
//! semantics, including the panic on under-length reads.

use std::ops::Deref;

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable byte buffer (a `Vec<u8>` offline, not a refcounted view).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies the contents into a fresh vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Takes ownership of an existing vector.
    #[must_use]
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_fields() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 15);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 0x1234);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.remaining(), 0);
    }
}
