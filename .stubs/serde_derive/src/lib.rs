//! Offline stub of `serde_derive`.
//!
//! Emits trivial trait impls: derived `Serialize` produces `Value::Null`
//! and derived `Deserialize` always errors. This keeps every
//! `#[derive(Serialize, Deserialize)]` in the workspace compiling without
//! the real syn/quote machinery; code that needs faithful typed serde
//! feature-detects the stub at runtime and skips.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct` / `enum` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut iter = input.clone().into_iter();
    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    match iter.next() {
                        Some(TokenTree::Ident(name)) => {
                            if let Some(TokenTree::Punct(p)) = iter.next() {
                                assert!(
                                    p.as_char() != '<',
                                    "serde stub derive does not support generic types"
                                );
                            }
                            return name.to_string();
                        }
                        other => panic!("serde stub derive: expected type name, got {other:?}"),
                    }
                }
            }
            _ => {}
        }
    }
    panic!("serde stub derive: no struct/enum keyword found");
}

/// Stub `#[derive(Serialize)]`: serializes every value as `null`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_stub_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
         }}"
    )
    .parse()
    .expect("stub Serialize impl parses")
}

/// Stub `#[derive(Deserialize)]`: always fails to deserialize.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_stub_value(_v: &::serde::Value) -> ::core::result::Result<Self, ::std::string::String> {{\n\
                 Err(\"typed deserialization is unsupported by the offline serde stub\".to_string())\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("stub Deserialize impl parses")
}
