//! Offline stub of `criterion`.
//!
//! `Criterion` is a unit struct; `bench_function` runs the closure once
//! via `Bencher::iter` so benches double as smoke tests offline, with no
//! statistics, sampling, or reports. The real criterion from crates.io
//! takes over in CI.

/// Measurement driver; a unit struct offline (no state to carry).
#[derive(Debug, Default, Clone, Copy)]
pub struct Criterion;

impl Criterion {
    /// Accepted and ignored offline.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted and ignored offline.
    #[must_use]
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Runs `f` once with a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(id, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }
}

fn run_once<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    eprintln!("bench (offline stub, 1 iteration): {id}");
    let mut b = Bencher { _private: () };
    f(&mut b);
}

/// Handle passed to bench closures; `iter` runs the payload once.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Runs the routine a single time (the stub takes no measurements).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine();
    }
}

/// Group of related benchmarks sharing throughput metadata.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored offline.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted and ignored offline.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` once with a [`Bencher`].
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_once(&format!("{}/{}", self.name, id.label), f);
        self
    }

    /// Closes the group (nothing to flush offline).
    pub fn finish(self) {}
}

/// Units-of-work annotation for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function-plus-parameter identifier.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", function.into()) }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Bundles bench functions under one runner fn, mirroring the real
/// macro's two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` calling each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
