//! Offline stub of `rand` 0.8.
//!
//! Deterministic stand-in exposing the trait surface the workspace uses:
//! `RngCore::next_u64`, `Rng::{gen_range, gen_bool, gen}`, and
//! `SeedableRng::{from_seed, seed_from_u64}`. The statistical quality is
//! splitmix64-grade — plenty for seeded test-input generation, not for
//! anything cryptographic.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a 64-bit output stream.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types `gen_range` can sample. Mirrors real rand's `SampleUniform` so
/// type inference unifies the range's element type with the result type
/// through a single blanket `SampleRange` impl per range shape.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws one value in `[start, end)` or `[start, end]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let lo = start as i128;
                let hi = end as i128 + i128::from(inclusive);
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi - lo) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (lo + offset as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Range types that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Values generable from raw bits (the stub's `Standard` distribution).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Draw from the standard distribution of `T`.
    fn r#gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a u64, expanded via splitmix64 like the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Module alias matching `rand::rngs` paths.
pub mod rngs {
    /// Placeholder for API-compatibility; the workspace seeds explicitly.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut eight = [0u8; 8];
            eight.copy_from_slice(&seed[..8]);
            StdRng { state: u64::from_le_bytes(eight) }
        }
    }
}
