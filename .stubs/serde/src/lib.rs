//! Offline stub of `serde`.
//!
//! The real crates-io `serde` is unavailable in the offline build
//! environment, so this stand-in models just enough for the workspace:
//! a value-level JSON data model (re-exported by the stub `serde_json`)
//! and `Serialize` / `Deserialize` traits whose derives produce trivial
//! impls. Typed serialization of derived types is NOT supported — code
//! that needs it feature-detects the stub and skips (see
//! `cohort_types::ids` tests).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Order-preserving string-keyed map, the stub's object representation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Inserts a key, replacing (in place) any previous value for it.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Whether the key is present.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::vec::IntoIter<(&'a String, &'a Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v)).collect::<Vec<_>>().into_iter()
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// JSON value tree — the single data model everything in the stub routes
/// through.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed (negative) integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Map),
}

impl Value {
    /// The value as a u64, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an i64, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an f64, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a str, if a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if one.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if one.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-key or array-index lookup.
    #[must_use]
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Index argument for [`Value::get`]: a string key or array position.
pub trait ValueIndex {
    /// Resolves the index against a value.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object()?.get(self)
    }
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object()?.get(self)
    }
}

impl ValueIndex for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object()?.get(self.as_str())
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array()?.get(*self)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            // Numeric variants compare by value across representations.
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_float(f: f64, out: &mut String) {
    if f.is_finite() {
        if f.fract() == 0.0 && f.abs() < 1e15 {
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        // JSON cannot represent non-finite numbers; match serde_json's
        // Value rendering of such floats as null.
        out.push_str("null");
    }
}

impl Value {
    fn render(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(f) => fmt_float(*f, out),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                        item.render(out, Some(level + 1));
                    } else {
                        item.render(out, None);
                    }
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                        escape_into(k, out);
                        out.push_str(": ");
                        v.render(out, Some(level + 1));
                    } else {
                        escape_into(k, out);
                        out.push(':');
                        v.render(out, None);
                    }
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
                out.push('}');
            }
        }
    }

    /// Compact JSON text.
    #[must_use]
    pub fn to_json_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None);
        out
    }

    /// Pretty-printed JSON text (two-space indent).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_compact())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Float(f64::from(f))
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self { Value::UInt(n as u64) }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n as i64) }
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(items: [T; N]) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(items: &[T]) -> Self {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        opt.map_or(Value::Null, Into::into)
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Self {
        Value::Object(map)
    }
}

/// Serialization to the stub's [`Value`] data model.
///
/// Derived impls produced by the stub `serde_derive` return
/// [`Value::Null`]; only hand-built `Value` trees serialize faithfully.
pub trait Serialize {
    /// Converts self to the stub data model.
    fn to_stub_value(&self) -> Value;
}

/// Deserialization from the stub's [`Value`] data model.
///
/// Derived impls produced by the stub `serde_derive` always fail; only
/// `Value` itself round-trips.
pub trait Deserialize: Sized {
    /// Reconstructs self from the stub data model.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not match (always, for
    /// derived impls under the stub).
    fn from_stub_value(v: &Value) -> Result<Self, String>;
}

impl Serialize for Value {
    fn to_stub_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_stub_value(&self) -> Value {
        (**self).to_stub_value()
    }
}

macro_rules! serialize_via_from {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_stub_value(&self) -> Value { Value::from(self.clone()) }
        }
    )*};
}
serialize_via_from!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String);

impl Serialize for str {
    fn to_stub_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_stub_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_stub_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_stub_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_stub_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_stub_value(&self) -> Value {
        self.as_ref().map_or(Value::Null, Serialize::to_stub_value)
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_stub_value(v: &Value) -> Result<Self, String> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| format!("expected integer, got {v}"))
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v}"))
    }
}

impl Deserialize for f64 {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        v.as_f64().ok_or_else(|| format!("expected number, got {v}"))
    }
}

impl Deserialize for String {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        v.as_str().map(str::to_string).ok_or_else(|| format!("expected string, got {v}"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, got {v}"))?
            .iter()
            .map(T::from_stub_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_stub_value(v).map(Some)
        }
    }
}
